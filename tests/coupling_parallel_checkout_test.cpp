// Parallel checkout under the reader-writer locking scheme
// (docs/concurrency.md). Three angles:
//
//   * raw-layer races: many threads hammer FileSystem::content_hash /
//     read_file / stat on the same nodes while writers mutate disjoint
//     paths -- the vfs rw-lock and the atomic hash memo must hold up
//     under TSan;
//   * the full storm: concurrent export_batch pools vs import_file vs
//     a chaos thread flipping the cache and snapshotting stats;
//   * a determinism guard: export_batch(items, workers=1) and
//     workers=8 over identical fresh environments must produce the
//     same Status vector, the same bytes on disk, the same stats and
//     the same final cache -- parallelism must never change results.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "jfm/coupling/transfer.hpp"

namespace jfm::coupling {
namespace {

// ---------------------------------------------------------------------------
// Raw vfs layer: concurrent hash memoization.

TEST(ParallelVfs, ConcurrentContentHashAndReadersRaceFree) {
  support::SimClock clock;
  vfs::FileSystem fs(&clock);
  ASSERT_TRUE(fs.mkdirs(vfs::Path().child("d")).ok());
  constexpr int kFiles = 8;
  for (int i = 0; i < kFiles; ++i) {
    ASSERT_TRUE(fs.write_file(vfs::Path().child("d").child("f" + std::to_string(i)),
                              std::string(512 + i, 'x'))
                    .ok());
  }
  // Readers all race to memoize the same hashes; writers stay on
  // disjoint paths. Every hash answer must equal the single-threaded
  // one -- the memo can be computed twice but never torn.
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < kFiles; ++i) expected.push_back(vfs::fnv1a(std::string(512 + i, 'x')));
  std::atomic<int> mismatches{0};
  auto reader = [&]() {
    for (int round = 0; round < 50; ++round) {
      for (int i = 0; i < kFiles; ++i) {
        vfs::Path f = vfs::Path().child("d").child("f" + std::to_string(i));
        auto h = fs.content_hash(f);
        if (!h.ok() || *h != expected[static_cast<std::size_t>(i)]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        auto data = fs.read_file(f);
        if (!data.ok() || data->size() != 512u + static_cast<std::size_t>(i)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        (void)fs.stat(f);
        (void)fs.tree_size(vfs::Path().child("d"));
      }
    }
  };
  auto writer = [&](int id) {
    for (int round = 0; round < 50; ++round) {
      vfs::Path f = vfs::Path().child("d").child("w" + std::to_string(id));
      (void)fs.write_file(f, "scratch " + std::to_string(round));
      (void)fs.content_hash(f);
    }
  };
  std::vector<std::thread> threads;
  for (int r = 0; r < 3; ++r) threads.emplace_back(reader);
  for (int w = 0; w < 2; ++w) threads.emplace_back(writer, w);
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  // the counters are atomics; the total read volume is exact
  const auto c = fs.counters();
  EXPECT_GE(c.bytes_read, 3u * 50u * kFiles * 512u);
}

// ---------------------------------------------------------------------------
// Engine-level fixture: a hierarchy of design objects with seed DOVs.

class ParallelCheckoutTest : public ::testing::Test {
 protected:
  // One self-contained environment. The determinism guard builds two
  // and requires them byte-identical, so everything here is seeded.
  struct Env {
    support::SimClock clock;
    vfs::FileSystem fs{&clock};
    jcf::JcfFramework jcf{&clock};
    jcf::UserRef user;
    std::vector<jcf::DesignObjectRef> dobjs;
    std::vector<jcf::DovRef> dovs;

    explicit Env(int objects) {
      EXPECT_TRUE(fs.mkdirs(vfs::Path().child("out")).ok());
      user = *jcf.create_user("alice");
      auto team = *jcf.create_team("rtl");
      EXPECT_TRUE(jcf.add_member(team, user).ok());
      auto tool = *jcf.register_tool("t");
      auto made = *jcf.create_viewtype("made");
      auto act = *jcf.create_activity("a", tool, {}, {made});
      auto flow = *jcf.create_flow("f", {act});
      EXPECT_TRUE(jcf.freeze_flow(flow).ok());
      auto project = *jcf.create_project("p", team);
      auto cell = *jcf.create_cell(project, "c", flow, team);
      auto cv = *jcf.create_cell_version(cell, user);
      EXPECT_TRUE(jcf.reserve(cv, user).ok());
      auto variant = *jcf.create_variant(cv, "work", user);
      for (int i = 0; i < objects; ++i) {
        auto vt = *jcf.create_viewtype("view" + std::to_string(i));
        dobjs.push_back(*jcf.create_design_object(variant, "do" + std::to_string(i), vt, user));
        // payload sizes vary so byte totals catch misrouted results
        dovs.push_back(*jcf.create_dov(dobjs.back(),
                                       std::string(200 + 17 * i, static_cast<char>('a' + i % 26)),
                                       user));
      }
    }
  };

  static std::vector<ExportRequest> requests(const Env& env, const std::string& prefix) {
    std::vector<ExportRequest> items;
    for (std::size_t i = 0; i < env.dovs.size(); ++i) {
      items.push_back({env.dovs[i], env.user,
                       vfs::Path().child("out").child(prefix + std::to_string(i))});
    }
    return items;
  }
};

// The full storm, for the TSan lane: reader pools, an importer and a
// chaos thread mixing cache maintenance with stats snapshots.
TEST_F(ParallelCheckoutTest, ExportStormWithImportsAndCacheChaos) {
  constexpr int kObjects = 8;
  Env env(kObjects);
  TransferOptions options;
  options.copy_through_filesystem = true;
  options.content_addressed_cache = true;
  options.cache_capacity = 64;
  TransferEngine engine(&env.jcf, &env.fs, vfs::Path().child("xfer"), options);

  constexpr int kImports = 24;
  std::vector<vfs::Path> sources;
  for (int i = 0; i < kImports; ++i) {
    vfs::Path src = vfs::Path().child("out").child("src" + std::to_string(i));
    ASSERT_TRUE(env.fs.write_file(src, "imported " + std::to_string(i)).ok());
    sources.push_back(src);
  }

  constexpr int kReaderThreads = 3;
  constexpr int kBatchesPerReader = 10;
  std::atomic<std::uint64_t> ok_exports{0};
  std::atomic<std::uint64_t> failed_exports{0};
  std::atomic<bool> done{false};

  auto reader = [&](int id) {
    for (int round = 0; round < kBatchesPerReader; ++round) {
      auto items = requests(env, "r" + std::to_string(id) + "_");
      auto results = engine.export_batch(items, 4);
      for (const auto& st : results) {
        (st.ok() ? ok_exports : failed_exports).fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  auto importer = [&]() {
    for (int i = 0; i < kImports; ++i) {
      auto dov = engine.import_file(sources[i], env.dobjs[static_cast<std::size_t>(i) % kObjects],
                                    env.user);
      EXPECT_TRUE(dov.ok()) << "import " << i;
    }
  };
  auto chaos = [&]() {
    std::uint64_t last_exports = 0;
    while (!done.load(std::memory_order_acquire)) {
      engine.clear_cache();
      (void)engine.cache_size();
      const auto s = engine.stats_snapshot();
      // snapshots are monotone: a later one never reports fewer exports
      EXPECT_GE(s.exports, last_exports);
      last_exports = s.exports;
      (void)env.fs.counters();
      std::this_thread::yield();
    }
  };

  std::vector<std::thread> threads;
  for (int r = 0; r < kReaderThreads; ++r) threads.emplace_back(reader, r);
  threads.emplace_back(importer);
  std::thread chaos_thread(chaos);
  for (auto& t : threads) t.join();
  done.store(true, std::memory_order_release);
  chaos_thread.join();

  const auto stats = engine.stats_snapshot();
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kReaderThreads) * kBatchesPerReader * kObjects;
  EXPECT_EQ(ok_exports.load(), expected);
  EXPECT_EQ(failed_exports.load(), 0u);
  EXPECT_EQ(stats.exports, expected);
  EXPECT_EQ(stats.imports, static_cast<std::uint64_t>(kImports));
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.exports);

  // Every destination holds exactly one seed payload, untorn. Imports
  // only ever add *new* versions, so each exported DovRef's bytes are
  // immutable for the whole run.
  for (int r = 0; r < kReaderThreads; ++r) {
    for (int i = 0; i < kObjects; ++i) {
      auto content = env.fs.read_file(vfs::Path().child("out").child(
          "r" + std::to_string(r) + "_" + std::to_string(i)));
      ASSERT_TRUE(content.ok());
      EXPECT_EQ(*content,
                std::string(200 + 17 * i, static_cast<char>('a' + i % 26)));
    }
  }
}

// Determinism guard: the worker count is a throughput knob, never a
// semantics knob. workers=1 and workers=8 over identical environments
// must agree on every observable.
TEST_F(ParallelCheckoutTest, WorkerCountDoesNotChangeResults) {
  constexpr int kObjects = 16;
  TransferOptions options;
  options.copy_through_filesystem = true;
  options.content_addressed_cache = true;
  options.cache_capacity = 256;

  auto run = [&](std::size_t workers) {
    auto env = std::make_unique<Env>(kObjects);
    TransferEngine engine(&env->jcf, &env->fs, vfs::Path().child("xfer"), options);
    auto items = requests(*env, "d");
    // one deterministic failure: a destination under a missing directory
    items.push_back({env->dovs[0], env->user,
                     vfs::Path().child("no_such_dir").child("x")});
    struct Outcome {
      std::vector<support::Status> cold;
      std::vector<support::Status> warm;
      TransferStats stats;
      std::size_t cache_entries;
      std::vector<std::string> files;
    } out;
    out.cold = engine.export_batch(items, workers);
    out.warm = engine.export_batch(items, workers);  // second pass: cache hits
    out.stats = engine.stats_snapshot();
    out.cache_entries = engine.cache_size();
    for (int i = 0; i < kObjects; ++i) {
      auto content = env->fs.read_file(vfs::Path().child("out").child("d" + std::to_string(i)));
      EXPECT_TRUE(content.ok());
      out.files.push_back(content.ok() ? *content : std::string());
    }
    return out;
  };

  const auto serial = run(1);
  const auto parallel = run(8);

  ASSERT_EQ(serial.cold.size(), parallel.cold.size());
  for (std::size_t i = 0; i < serial.cold.size(); ++i) {
    EXPECT_EQ(serial.cold[i].ok(), parallel.cold[i].ok()) << "cold item " << i;
    EXPECT_EQ(serial.cold[i].code(), parallel.cold[i].code()) << "cold item " << i;
    EXPECT_EQ(serial.warm[i].ok(), parallel.warm[i].ok()) << "warm item " << i;
  }
  // the one bad destination failed in both runs
  EXPECT_FALSE(serial.cold.back().ok());
  EXPECT_FALSE(parallel.cold.back().ok());

  EXPECT_EQ(serial.files, parallel.files);
  EXPECT_EQ(serial.cache_entries, parallel.cache_entries);
  EXPECT_EQ(serial.stats.exports, parallel.stats.exports);
  EXPECT_EQ(serial.stats.bytes_exported, parallel.stats.bytes_exported);
  EXPECT_EQ(serial.stats.staging_copies, parallel.stats.staging_copies);
  EXPECT_EQ(serial.stats.cache_hits, parallel.stats.cache_hits);
  EXPECT_EQ(serial.stats.cache_misses, parallel.stats.cache_misses);
  EXPECT_EQ(serial.stats.bytes_saved, parallel.stats.bytes_saved);
  // and the warm pass hit for every good destination in both runs
  EXPECT_EQ(serial.stats.cache_hits, static_cast<std::uint64_t>(kObjects));
}

// Zero-rehash warm exports: once a destination is materialized, a
// repeat export of the same DOVs must answer entirely from hash memos
// -- zero payload bytes read, zero payload bytes hashed, at either end
// of the pipe (vfs counters AND the jcf logical read accounting).
TEST_F(ParallelCheckoutTest, WarmExportBatchReadsAndHashesZeroPayloadBytes) {
  constexpr int kObjects = 12;
  Env env(kObjects);
  TransferOptions options;
  options.copy_through_filesystem = true;
  options.content_addressed_cache = true;
  TransferEngine engine(&env.jcf, &env.fs, vfs::Path().child("xfer"), options);
  auto items = requests(env, "z");
  for (const auto& st : engine.export_batch(items, 1)) ASSERT_TRUE(st.ok());

  const auto fs_before = env.fs.counters();
  const auto ws_before = env.jcf.workspace_stats();
  auto warm = engine.export_batch(items, 1);
  for (const auto& st : warm) EXPECT_TRUE(st.ok());
  const auto fs_after = env.fs.counters();
  const auto ws_after = env.jcf.workspace_stats();

  EXPECT_EQ(fs_after.hash_bytes, fs_before.hash_bytes);
  EXPECT_EQ(fs_after.bytes_read, fs_before.bytes_read);
  EXPECT_EQ(ws_after.dov_read_bytes_logical, ws_before.dov_read_bytes_logical);
  // ... while the exports still count as exports, with real byte totals
  const auto stats = engine.stats_snapshot();
  EXPECT_EQ(stats.exports, 2u * kObjects);
  EXPECT_EQ(stats.cache_hits, static_cast<std::uint64_t>(kObjects));
}

// cache_probe leaves the fs hash memo behind: after an out-of-band
// overwrite invalidates it, the FIRST probe re-hashes the destination
// once and the SECOND probe of the same path is O(1) -- no new hashed
// bytes.
TEST_F(ParallelCheckoutTest, CacheProbeMemoizesSoSecondProbeIsFree) {
  Env env(1);
  TransferOptions options;
  options.copy_through_filesystem = true;
  options.content_addressed_cache = true;
  TransferEngine engine(&env.jcf, &env.fs, vfs::Path().child("xfer"), options);
  auto items = requests(env, "p");
  ASSERT_TRUE(engine.export_batch(items, 1)[0].ok());

  // Out-of-band rewrite with the SAME bytes: contents unchanged, but
  // write_file cannot know that, so the node's hash memo is dropped.
  auto bytes = env.fs.read_file(items[0].dst);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(env.fs.write_file(items[0].dst, *bytes).ok());

  const auto before = env.fs.counters();
  ASSERT_TRUE(engine.export_dov(items[0].dov, env.user, items[0].dst).ok());
  const auto mid = env.fs.counters();
  // probe 1 verified by hashing the destination payload exactly once
  EXPECT_EQ(mid.hash_bytes - before.hash_bytes, bytes->size());

  ASSERT_TRUE(engine.export_dov(items[0].dov, env.user, items[0].dst).ok());
  const auto after = env.fs.counters();
  // probe 2 rides the memo probe 1 installed: zero new hashed bytes
  EXPECT_EQ(after.hash_bytes, mid.hash_bytes);
  EXPECT_EQ(engine.stats_snapshot().cache_hits, 2u);
}

// The serialization ablation still produces correct results -- it only
// changes the locking, never the data path.
TEST_F(ParallelCheckoutTest, ExclusiveTransfersAblationStaysCorrect) {
  constexpr int kObjects = 8;
  Env env(kObjects);
  TransferOptions options;
  options.copy_through_filesystem = true;
  options.content_addressed_cache = true;
  options.exclusive_transfers = true;
  TransferEngine engine(&env.jcf, &env.fs, vfs::Path().child("xfer"), options);
  auto items = requests(env, "e");
  auto results = engine.export_batch(items, 8);
  for (std::size_t i = 0; i < results.size(); ++i) EXPECT_TRUE(results[i].ok()) << i;
  EXPECT_EQ(engine.stats_snapshot().exports, static_cast<std::uint64_t>(kObjects));
  for (int i = 0; i < kObjects; ++i) {
    auto content = env.fs.read_file(vfs::Path().child("out").child("e" + std::to_string(i)));
    ASSERT_TRUE(content.ok());
    EXPECT_EQ(content->size(), 200u + 17u * static_cast<unsigned>(i));
  }
}

}  // namespace
}  // namespace jfm::coupling
