// The persistent work-stealing executor (docs/executor.md): lazy
// start, task handles, helping joins, run_lanes / parallel_for
// coverage, telemetry accounting, and an 8-thread steal storm for the
// TSan lane. Fresh Executor instances throughout -- the global() pool
// is shared process-wide and other suites may have warmed it.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "jfm/support/executor.hpp"
#include "jfm/support/telemetry.hpp"

namespace jfm::support::executor {
namespace {

namespace telemetry = support::telemetry;

std::uint64_t counter_value(const char* name) {
  auto snapshot = telemetry::Registry::global().snapshot();
  auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second;
}

TEST(ExecutorTest, StartsLazilyOnFirstSubmit) {
  Executor exec(2);
  EXPECT_EQ(exec.workers(), 2u);
  EXPECT_FALSE(exec.started());  // construction spawns nothing
  std::atomic<bool> ran{false};
  auto h = exec.submit([&]() { ran.store(true); });
  EXPECT_TRUE(exec.started());
  exec.help_until(h);
  EXPECT_TRUE(ran.load());
  EXPECT_TRUE(h.done());
}

TEST(ExecutorTest, DefaultHandleIsInvalid) {
  TaskHandle h;
  EXPECT_FALSE(h.valid());
}

TEST(ExecutorTest, GlobalIsASingleton) {
  EXPECT_EQ(&Executor::global(), &Executor::global());
  EXPECT_GE(Executor::global().workers(), 1u);
}

TEST(ExecutorTest, DefaultWorkerCountHonorsEnvOverride) {
  ::setenv("JFM_WORKERS", "3", 1);
  EXPECT_EQ(Executor::default_worker_count(), 3u);
  ::setenv("JFM_WORKERS", "0", 1);  // out of range -> ignored
  EXPECT_GE(Executor::default_worker_count(), 8u);
  ::setenv("JFM_WORKERS", "9999", 1);  // clamped down
  EXPECT_EQ(Executor::default_worker_count(), 64u);
  ::unsetenv("JFM_WORKERS");
  EXPECT_GE(Executor::default_worker_count(), 8u);
}

TEST(ExecutorTest, WaitBlocksUntilDone) {
  Executor exec(2);
  std::atomic<int> ran{0};
  std::vector<TaskHandle> handles;
  for (int i = 0; i < 32; ++i) {
    handles.push_back(exec.submit([&]() { ran.fetch_add(1); }));
  }
  for (auto& h : handles) h.wait();
  EXPECT_EQ(ran.load(), 32);
}

TEST(ExecutorTest, HelpUntilDrainsOwnSubmissionsOnASaturatedPool) {
  // One worker, and its only queued task blocks until the MAIN thread
  // has finished helping a second task through: if help_until merely
  // slept, this would deadlock.
  Executor exec(1);
  std::atomic<bool> helped{false};
  auto gate = exec.submit([&]() {
    while (!helped.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  auto h = exec.submit([&]() { helped.store(true, std::memory_order_release); });
  exec.help_until(h);  // must execute the task itself
  EXPECT_TRUE(h.done());
  exec.help_until(gate);
  EXPECT_TRUE(gate.done());
}

TEST(ExecutorTest, RunLanesInlineWhenSingleLane) {
  Executor exec(4);
  int calls = 0;
  exec.run_lanes(1, [&]() { ++calls; });
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(exec.started());  // lanes<=1 never touches the pool
}

TEST(ExecutorTest, RunLanesRunsBodyOncePerLane) {
  Executor exec(4);
  std::atomic<int> calls{0};
  std::set<std::thread::id> tids;
  std::mutex mu;
  exec.run_lanes(6, [&]() {
    calls.fetch_add(1);
    std::lock_guard<std::mutex> lock(mu);
    tids.insert(std::this_thread::get_id());
  });
  EXPECT_EQ(calls.load(), 6);
  // the calling thread ran one of the lanes itself
  EXPECT_TRUE(tids.count(std::this_thread::get_id()) == 1);
}

TEST(ExecutorTest, ParallelForCoversEveryIndexExactlyOnce) {
  Executor exec(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  exec.parallel_for(kN, 8, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ExecutorTest, ParallelForZeroAndOneItemEdgeCases) {
  Executor exec(2);
  int calls = 0;
  exec.parallel_for(0, 8, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  exec.parallel_for(1, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ExecutorTest, TelemetryCountsSubmittedEqualsCompleted) {
  const std::uint64_t submitted_before = counter_value("executor.task.submitted.count");
  const std::uint64_t completed_before = counter_value("executor.task.completed.count");
  {
    Executor exec(3);
    std::atomic<int> ran{0};
    std::vector<TaskHandle> handles;
    for (int i = 0; i < 40; ++i) handles.push_back(exec.submit([&]() { ran.fetch_add(1); }));
    for (auto& h : handles) exec.help_until(h);
    EXPECT_EQ(ran.load(), 40);
  }  // destructor drains; nothing may be lost
  const std::uint64_t submitted = counter_value("executor.task.submitted.count");
  const std::uint64_t completed = counter_value("executor.task.completed.count");
  EXPECT_GE(submitted - submitted_before, 40u);
  EXPECT_EQ(submitted - submitted_before, completed - completed_before);
}

TEST(ExecutorTest, DestructorRunsEveryTaskSubmittedBeforeStop) {
  std::atomic<int> ran{0};
  constexpr int kTasks = 200;
  {
    Executor exec(4);
    for (int i = 0; i < kTasks; ++i) (void)exec.submit([&]() { ran.fetch_add(1); });
  }  // ~Executor joins workers and drains leftovers on this thread
  EXPECT_EQ(ran.load(), kTasks);
}

// The TSan centerpiece: 8 external threads hammer one 8-worker pool
// with interleaved submits, helping joins and nested parallel_fors,
// forcing cross-lane steals the whole way.
TEST(ExecutorTest, StealStormIsRaceFreeAndLosesNothing) {
  Executor exec(8);
  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  constexpr int kTasksPerRound = 16;
  std::atomic<std::uint64_t> sum{0};

  auto storm = [&](int id) {
    for (int round = 0; round < kRounds; ++round) {
      std::vector<TaskHandle> handles;
      for (int t = 0; t < kTasksPerRound; ++t) {
        const std::uint64_t value =
            static_cast<std::uint64_t>(id) * 1000003u + static_cast<std::uint64_t>(t);
        handles.push_back(exec.submit([&sum, value]() {
          sum.fetch_add(value, std::memory_order_relaxed);
        }));
      }
      // odd rounds help (stealing whatever is queued), even rounds
      // sleep-wait: both join paths must be clean under contention
      for (auto& h : handles) {
        if (round % 2 == 1) {
          exec.help_until(h);
        } else {
          h.wait();
        }
      }
      exec.parallel_for(8, 4, [&](std::size_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
      });
    }
  };

  std::vector<std::thread> threads;
  for (int id = 0; id < kThreads; ++id) threads.emplace_back(storm, id);
  for (auto& t : threads) t.join();

  std::uint64_t expected = 0;
  for (int id = 0; id < kThreads; ++id) {
    for (int round = 0; round < kRounds; ++round) {
      for (int t = 0; t < kTasksPerRound; ++t) {
        expected += static_cast<std::uint64_t>(id) * 1000003u + static_cast<std::uint64_t>(t);
      }
      expected += 0 + 1 + 2 + 3 + 4 + 5 + 6 + 7;
    }
  }
  EXPECT_EQ(sum.load(), expected);
}

}  // namespace
}  // namespace jfm::support::executor
