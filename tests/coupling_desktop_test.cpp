// The JCF desktop as a scriptable command surface (s3.4).

#include <gtest/gtest.h>

#include "jfm/coupling/desktop.hpp"
#include "jfm/support/executor.hpp"
#include "jfm/support/faultsim.hpp"

namespace jfm::coupling {
namespace {

using support::Errc;

class DesktopTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(hybrid.bootstrap().ok());
    shell = std::make_unique<DesktopShell>(&hybrid);
  }
  HybridFramework hybrid;
  std::unique_ptr<DesktopShell> shell;
};

TEST_F(DesktopTest, FullSessionScript) {
  const char* script = R"(
    # a complete design session from the desktop
    designer alice
    project demo
    cell demo counter alice
    reserve demo counter alice
    edit add-port a in
    edit add-port y out
    edit add-prim g0 BUF
    edit connect a g0 a
    edit connect y g0 y
    run demo counter enter_schematic alice
    edit set-dut counter schematic
    edit add-stim 1 a 1
    edit add-watch y
    edit run
    run demo counter simulate alice
    publish demo counter alice
    derivations demo counter
    check demo
  )";
  auto result = shell->run_script(script);
  ASSERT_TRUE(result.ok()) << result.error().to_text();
  EXPECT_EQ(result->commands_executed, 18u);  // each command line = one desktop step
  // transcript carries the derivation row and a clean check
  bool saw_derivation = false;
  bool saw_clean_check = false;
  for (const auto& line : result->transcript) {
    if (line.find("simulate v1 <- schematic v1") != std::string::npos) saw_derivation = true;
    if (line.find("demo: 0 consistency problem(s)") != std::string::npos) saw_clean_check = true;
  }
  EXPECT_TRUE(saw_derivation);
  EXPECT_TRUE(saw_clean_check);
}

TEST_F(DesktopTest, ErrorsStopTheScriptByDefault) {
  const char* script = R"(
    designer alice
    reserve nosuch cell alice
    designer bob
  )";
  auto result = shell->run_script(script);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::not_found);
  // bob was never created
  EXPECT_FALSE(hybrid.jcf().find_user("bob").ok());
  // keep_going mode pushes through
  auto lenient = shell->run_script(script, /*keep_going=*/true);
  ASSERT_TRUE(lenient.ok());
  EXPECT_TRUE(hybrid.jcf().find_user("bob").ok());
}

TEST_F(DesktopTest, UnknownAndMalformedCommands) {
  DesktopResult result;
  EXPECT_EQ(shell->execute_line("frobnicate x", result).code(), Errc::not_found);
  EXPECT_EQ(shell->execute_line("designer", result).code(), Errc::invalid_argument);
  EXPECT_EQ(shell->execute_line("run a b", result).code(), Errc::invalid_argument);
  // comments and blanks execute as no-ops
  EXPECT_TRUE(shell->execute_line("# comment", result).ok());
  EXPECT_TRUE(shell->execute_line("   ", result).ok());
  EXPECT_EQ(result.commands_executed, 3u);  // only real commands count
}

TEST_F(DesktopTest, CustomFlowThroughTheShell) {
  const char* script = R"(
    designer alice
    project p
    define-flow quick_flow enter_schematic,enter_layout enter_schematic>enter_layout
    cell p blk alice
    set-flow p blk quick_flow
    reserve p blk alice
    edit add-net n1
    run p blk enter_schematic alice
    edit add-layer m1
    edit draw-rect m1 0 0 10 10
    run p blk enter_layout alice
  )";
  auto result = shell->run_script(script);
  ASSERT_TRUE(result.ok()) << result.error().to_text();
}

TEST_F(DesktopTest, ForcedRunReportsWindow) {
  const char* script = R"(
    designer alice
    project p
    cell p blk alice
    reserve p blk alice
    edit add-net n1
    run p blk enter_schematic alice
    edit add-layer m1
    run p blk enter_layout alice force
  )";
  auto result = shell->run_script(script);
  ASSERT_TRUE(result.ok()) << result.error().to_text();
  bool saw_window = false;
  for (const auto& line : result->transcript) {
    if (line.find("[window]") != std::string::npos) saw_window = true;
  }
  EXPECT_TRUE(saw_window);
}

TEST_F(DesktopTest, EditsAreConsumedPerRun) {
  DesktopResult result;
  ASSERT_TRUE(shell->execute_line("designer alice", result).ok());
  ASSERT_TRUE(shell->execute_line("project p", result).ok());
  ASSERT_TRUE(shell->execute_line("cell p c alice", result).ok());
  ASSERT_TRUE(shell->execute_line("reserve p c alice", result).ok());
  ASSERT_TRUE(shell->execute_line("edit add-net n1", result).ok());
  ASSERT_TRUE(shell->execute_line("run p c enter_schematic alice", result).ok());
  // a second run has no queued edits: it just re-opens and checks in
  ASSERT_TRUE(shell->execute_line("run p c enter_schematic alice", result).ok());
  bool saw_zero_edits = false;
  for (const auto& line : result.transcript) {
    if (line.find("0 edits") != std::string::npos) saw_zero_edits = true;
  }
  EXPECT_TRUE(saw_zero_edits);
}

TEST_F(DesktopTest, CheckoutCommandExportsHierarchyInOneStep) {
  const char* script = R"(
    designer alice
    project p
    cell p top alice
    cell p leaf alice
    reserve p top alice
    reserve p leaf alice
    edit add-net n1
    run p top enter_schematic alice
    edit add-net n2
    run p leaf enter_schematic alice
    declare-child p top leaf
    checkout p top alice
  )";
  auto result = shell->run_script(script);
  ASSERT_TRUE(result.ok()) << result.error().to_text();
  bool saw_checkout = false;
  for (const auto& line : result->transcript) {
    if (line.find("checked out top hierarchy: 2/2 cellviews from 2 cell(s)") !=
        std::string::npos) {
      saw_checkout = true;
    }
  }
  EXPECT_TRUE(saw_checkout);
  // the batch really materialized both cells' schematics
  auto& fs = hybrid.fs();
  auto dir = vfs::Path().child("scratch").child("checkout_top");
  EXPECT_TRUE(fs.exists(dir.child("top_schematic")));
  EXPECT_TRUE(fs.exists(dir.child("leaf_schematic")));
}

TEST_F(DesktopTest, CheckoutCommandUsageErrors) {
  DesktopResult result;
  auto st = shell->execute_line("checkout p", result);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, Errc::invalid_argument);
  // a fifth word other than --incremental is rejected too
  EXPECT_EQ(shell->execute_line("checkout p top alice --wrong", result).code(),
            Errc::invalid_argument);
}

TEST_F(DesktopTest, IncrementalCheckoutRidesTheChangeFeed) {
  const char* script = R"(
    designer alice
    project p
    cell p top alice
    cell p leaf alice
    reserve p top alice
    reserve p leaf alice
    edit add-net n1
    run p top enter_schematic alice
    edit add-net n2
    run p leaf enter_schematic alice
    declare-child p top leaf
    checkout p top alice
    checkout p top alice --incremental
  )";
  auto result = shell->run_script(script);
  ASSERT_TRUE(result.ok()) << result.error().to_text();
  // The repeat sync with --incremental finds nothing changed: zero
  // requests, both known cellviews skipped.
  bool saw_delta = false;
  bool saw_skipped = false;
  for (const auto& line : result->transcript) {
    if (line.find("checked out top delta: 0/0 cellviews") != std::string::npos) {
      saw_delta = true;
    }
    if (line.find("skipped 2 unchanged cellview(s)") != std::string::npos) {
      saw_skipped = true;
    }
  }
  EXPECT_TRUE(saw_delta);
  EXPECT_TRUE(saw_skipped);

  DesktopResult stats;
  ASSERT_TRUE(shell->execute_line("stats changes", stats).ok());
  bool saw_epochs = false, saw_feed = false, saw_counts = false, saw_cursor = false;
  for (const auto& line : stats.transcript) {
    if (line.rfind("epochs: store=", 0) == 0) saw_epochs = true;
    if (line.rfind("feed: served=", 0) == 0) saw_feed = true;
    if (line.rfind("checkout: incremental=", 0) == 0) saw_counts = true;
    if (line.find("incremental) last_feed=") != std::string::npos &&
        line.find("checkout_top") != std::string::npos) {
      saw_cursor = true;
    }
  }
  EXPECT_TRUE(saw_epochs);
  EXPECT_TRUE(saw_feed);
  EXPECT_TRUE(saw_counts);
  EXPECT_TRUE(saw_cursor);
}

TEST_F(DesktopTest, StatsIndexSummarizesIndexEffectiveness) {
  const char* script = R"(
    designer alice
    project demo
    cell demo counter alice
    stats index
  )";
  auto result = shell->run_script(script);
  ASSERT_TRUE(result.ok()) << result.error().to_text();
  bool saw_entries = false;
  bool saw_queries = false;
  bool saw_find_one = false;
  bool saw_maintenance = false;
  for (const auto& line : result->transcript) {
    if (line.rfind("oms index entries: class=", 0) == 0) saw_entries = true;
    if (line.rfind("queries: indexed=", 0) == 0) saw_queries = true;
    if (line.rfind("find_one: hits=", 0) == 0) saw_find_one = true;
    if (line.rfind("maintenance: adds=", 0) == 0) saw_maintenance = true;
  }
  EXPECT_TRUE(saw_entries);
  EXPECT_TRUE(saw_queries);
  EXPECT_TRUE(saw_find_one);
  EXPECT_TRUE(saw_maintenance);
  // creating designers/projects/cells populated the name indexes, and
  // the uniqueness probes inside create_named answered through them
  DesktopResult one;
  ASSERT_TRUE(shell->execute_line("stats index", one).ok());
  ASSERT_FALSE(one.transcript.empty());
  EXPECT_NE(one.transcript[0].find("class="), std::string::npos);
}

TEST_F(DesktopTest, FaultCommandsArmDigestAndDisarm) {
  auto& injector = support::faultsim::Injector::global();
  DesktopResult result;
  // arm with an explicit schedule; the transcript echoes seed + sites
  ASSERT_TRUE(shell->execute_line("faults seed=5;vfs.write=0.5;oms.commit@2", result).ok());
  EXPECT_TRUE(support::faultsim::Injector::armed());
  EXPECT_EQ(injector.seed(), 5u);
  ASSERT_FALSE(result.transcript.empty());
  EXPECT_NE(result.transcript.back().find("seed 5, 2 site(s)"), std::string::npos);

  DesktopResult digest;
  ASSERT_TRUE(shell->execute_line("stats faults", digest).ok());
  bool saw_armed = false, saw_faults = false, saw_transfer = false, saw_checkout = false;
  for (const auto& line : digest.transcript) {
    if (line.rfind("injector: armed (seed 5)", 0) == 0) saw_armed = true;
    if (line.rfind("faults: evaluated=", 0) == 0) saw_faults = true;
    if (line.rfind("transfer: retries=", 0) == 0) saw_transfer = true;
    if (line.rfind("checkout: rollbacks=", 0) == 0) saw_checkout = true;
  }
  EXPECT_TRUE(saw_armed);
  EXPECT_TRUE(saw_faults);
  EXPECT_TRUE(saw_transfer);
  EXPECT_TRUE(saw_checkout);

  // a malformed plan is rejected and leaves the previous plan armed
  DesktopResult bad;
  EXPECT_FALSE(shell->execute_line("faults vfs.write=nonsense", bad).ok());
  EXPECT_TRUE(support::faultsim::Injector::armed());

  DesktopResult off;
  ASSERT_TRUE(shell->execute_line("faults off", off).ok());
  EXPECT_FALSE(support::faultsim::Injector::armed());
  DesktopResult disarmed;
  ASSERT_TRUE(shell->execute_line("stats faults", disarmed).ok());
  ASSERT_FALSE(disarmed.transcript.empty());
  EXPECT_EQ(disarmed.transcript.front(), "injector: disarmed");
  // usage error on a bare `faults`
  DesktopResult usage;
  EXPECT_EQ(shell->execute_line("faults", usage).code(), Errc::invalid_argument);
}

TEST_F(DesktopTest, StatsExecutorSummarizesThePool) {
  DesktopResult result;
  ASSERT_TRUE(shell->execute_line("stats executor", result).ok());
  bool saw_pool = false, saw_tasks = false, saw_steals = false;
  for (const auto& line : result.transcript) {
    if (line.rfind("pool: workers=", 0) == 0) saw_pool = true;
    if (line.rfind("tasks: submitted=", 0) == 0) saw_tasks = true;
    if (line.rfind("steals: ", 0) == 0) saw_steals = true;
  }
  EXPECT_TRUE(saw_pool);
  EXPECT_TRUE(saw_tasks);
  EXPECT_TRUE(saw_steals);

  // Drive real work through the pool and require the task counters to
  // be visible (and balanced) in the digest afterwards.
  auto& exec = support::executor::Executor::global();
  exec.parallel_for(64, 4, [](std::size_t) {});
  DesktopResult after;
  ASSERT_TRUE(shell->execute_line("stats executor", after).ok());
  bool saw_started = false;
  for (const auto& line : after.transcript) {
    if (line.find("(started)") != std::string::npos) saw_started = true;
    if (line.rfind("tasks: submitted=", 0) == 0) {
      EXPECT_EQ(line.find("submitted=0 "), std::string::npos) << line;
    }
  }
  EXPECT_TRUE(saw_started);
  // the unknown-subcommand path still falls through to the prefix table
  DesktopResult usage;
  EXPECT_EQ(shell->execute_line("stats a b c", usage).code(), Errc::invalid_argument);
}

}  // namespace
}  // namespace jfm::coupling
