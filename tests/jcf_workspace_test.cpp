// The JCF workspace concept (paper s2.1/s3.1): exclusive reservation,
// published-only visibility for everyone else, and publication.

#include <gtest/gtest.h>

#include "jfm/jcf/framework.hpp"

namespace jfm::jcf {
namespace {

using support::Errc;

class WorkspaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    alice = *jcf.create_user("alice");
    bob = *jcf.create_user("bob");
    outsider = *jcf.create_user("eve");
    team = *jcf.create_team("rtl");
    ASSERT_TRUE(jcf.add_member(team, alice).ok());
    ASSERT_TRUE(jcf.add_member(team, bob).ok());
    auto tool = *jcf.register_tool("t");
    vt = *jcf.create_viewtype("schematic");
    auto act = *jcf.create_activity("a", tool, {}, {vt});
    flow = *jcf.create_flow("f", {act});
    ASSERT_TRUE(jcf.freeze_flow(flow).ok());
    project = *jcf.create_project("chip", team);
    cell = *jcf.create_cell(project, "alu", flow, team);
    cv = *jcf.create_cell_version(cell, alice);
  }

  support::SimClock clock;
  JcfFramework jcf{&clock};
  UserRef alice, bob, outsider;
  TeamRef team;
  ViewTypeRef vt;
  FlowRef flow;
  ProjectRef project;
  CellRef cell;
  CellVersionRef cv;
};

TEST_F(WorkspaceTest, ReserveIsExclusive) {
  EXPECT_EQ(*jcf.reserved_by(cv), "");
  ASSERT_TRUE(jcf.reserve(cv, alice).ok());
  EXPECT_EQ(*jcf.reserved_by(cv), "alice");
  auto denied = jcf.reserve(cv, bob);
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.error().code, Errc::locked);
  // re-reserving your own workspace is flagged distinctly
  EXPECT_EQ(jcf.reserve(cv, alice).code(), Errc::already_exists);
  EXPECT_EQ(jcf.workspace_stats().reservation_conflicts, 2u);
  EXPECT_EQ(jcf.workspace_stats().reservations, 1u);
}

TEST_F(WorkspaceTest, ReserveRequiresTeamMembership) {
  auto denied = jcf.reserve(cv, outsider);
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.error().code, Errc::permission_denied);
}

TEST_F(WorkspaceTest, UnpublishedDataVisibleOnlyToHolder) {
  ASSERT_TRUE(jcf.reserve(cv, alice).ok());
  auto variant = *jcf.create_variant(cv, "work", alice);
  auto dobj = *jcf.create_design_object(variant, "schematic", vt, alice);
  auto dov = *jcf.create_dov(dobj, "secret design", alice);
  // holder reads fine
  EXPECT_EQ(*jcf.dov_data(dov, alice), "secret design");
  // teammate cannot see unpublished data
  auto denied = jcf.dov_data(dov, bob);
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.error().code, Errc::permission_denied);
  EXPECT_EQ(jcf.workspace_stats().read_denials, 1u);
  // after publish everyone reads
  ASSERT_TRUE(jcf.publish(cv, alice).ok());
  EXPECT_EQ(*jcf.dov_data(dov, bob), "secret design");
  EXPECT_EQ(*jcf.dov_data(dov, outsider), "secret design");
}

TEST_F(WorkspaceTest, PublishReleasesReservation) {
  ASSERT_TRUE(jcf.reserve(cv, alice).ok());
  ASSERT_TRUE(jcf.publish(cv, alice).ok());
  EXPECT_EQ(*jcf.reserved_by(cv), "");
  // bob can now take it
  EXPECT_TRUE(jcf.reserve(cv, bob).ok());
}

TEST_F(WorkspaceTest, OnlyHolderCanPublish) {
  ASSERT_TRUE(jcf.reserve(cv, alice).ok());
  auto denied = jcf.publish(cv, bob);
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.error().code, Errc::permission_denied);
  // publishing an unreserved version also fails
  auto cv2 = *jcf.create_cell_version(cell, alice);
  EXPECT_EQ(jcf.publish(cv2, alice).code(), Errc::permission_denied);
}

TEST_F(WorkspaceTest, WritesRequireTheWorkspace) {
  ASSERT_TRUE(jcf.reserve(cv, alice).ok());
  auto variant = *jcf.create_variant(cv, "work", alice);
  auto dobj = *jcf.create_design_object(variant, "schematic", vt, alice);
  // bob holds nothing: all writes denied
  EXPECT_EQ(jcf.create_dov(dobj, "x", bob).code(), Errc::permission_denied);
  EXPECT_EQ(jcf.create_design_object(variant, "d2", vt, bob).code(), Errc::permission_denied);
  EXPECT_EQ(jcf.create_variant(cv, "v2", bob).code(), Errc::permission_denied);
}

TEST_F(WorkspaceTest, ParallelWorkOnDifferentCellVersions) {
  // the capability FMCAD lacks (s3.1): two users, two versions of the
  // same cell, simultaneously
  auto cv2 = *jcf.create_cell_version(cell, bob);
  ASSERT_TRUE(jcf.reserve(cv, alice).ok());
  ASSERT_TRUE(jcf.reserve(cv2, bob).ok());
  auto va = *jcf.create_variant(cv, "work", alice);
  auto vb = *jcf.create_variant(cv2, "work", bob);
  auto da = *jcf.create_design_object(va, "schematic", vt, alice);
  auto db = *jcf.create_design_object(vb, "schematic", vt, bob);
  EXPECT_TRUE(jcf.create_dov(da, "alice's take", alice).ok());
  EXPECT_TRUE(jcf.create_dov(db, "bob's take", bob).ok());
}

TEST_F(WorkspaceTest, PublishMakesAllVariantDataVisible) {
  ASSERT_TRUE(jcf.reserve(cv, alice).ok());
  auto v1 = *jcf.create_variant(cv, "opt1", alice);
  auto v2 = *jcf.create_variant(cv, "opt2", alice);
  auto d1 = *jcf.create_design_object(v1, "schematic", vt, alice);
  auto d2 = *jcf.create_design_object(v2, "schematic", vt, alice);
  auto dov1 = *jcf.create_dov(d1, "one", alice);
  auto dov2 = *jcf.create_dov(d2, "two", alice);
  ASSERT_TRUE(jcf.publish(cv, alice).ok());
  EXPECT_EQ(*jcf.dov_data(dov1, bob), "one");
  EXPECT_EQ(*jcf.dov_data(dov2, bob), "two");
}

}  // namespace
}  // namespace jfm::jcf
