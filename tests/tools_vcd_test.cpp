// VCD export of simulation traces.

#include <gtest/gtest.h>

#include "jfm/support/strings.hpp"
#include "jfm/tools/vcd.hpp"

namespace jfm::tools {
namespace {

Simulator simulate_inverter() {
  Circuit c;
  int in = c.add_signal("in");
  int out = c.add_signal("out");
  c.gates.push_back({"NOT", {in}, out, 1});
  Simulator sim(std::move(c));
  (void)sim.inject(0, "in", Logic::L0);
  (void)sim.inject(10, "in", Logic::L1);
  (void)sim.run(100);
  return sim;
}

TEST(Vcd, HeaderAndStructure) {
  Simulator sim = simulate_inverter();
  std::string vcd = to_vcd(sim);
  EXPECT_TRUE(vcd.find("$timescale 1ns $end") != std::string::npos);
  EXPECT_TRUE(vcd.find("$var wire 1 ! in $end") != std::string::npos);
  EXPECT_TRUE(vcd.find("$var wire 1 \" out $end") != std::string::npos);
  EXPECT_TRUE(vcd.find("$enddefinitions $end") != std::string::npos);
  EXPECT_TRUE(vcd.find("$dumpvars") != std::string::npos);
}

TEST(Vcd, ChangesGroupedByTimeInOrder) {
  Simulator sim = simulate_inverter();
  std::string vcd = to_vcd(sim);
  // timeline: #0 in=0; #1 out=1; #10 in=1; #11 out=0
  auto p0 = vcd.find("#0\n0!");
  auto p1 = vcd.find("#1\n1\"");
  auto p10 = vcd.find("#10\n1!");
  auto p11 = vcd.find("#11\n0\"");
  ASSERT_NE(p0, std::string::npos);
  ASSERT_NE(p1, std::string::npos);
  ASSERT_NE(p10, std::string::npos);
  ASSERT_NE(p11, std::string::npos);
  EXPECT_LT(p0, p1);
  EXPECT_LT(p1, p10);
  EXPECT_LT(p10, p11);
}

TEST(Vcd, SignalSelectionFiltersTrace) {
  Simulator sim = simulate_inverter();
  std::string vcd = to_vcd(sim, {"out"});
  EXPECT_EQ(vcd.find("$var wire 1 ! in $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 ! out $end"), std::string::npos);
  // in's transitions are not dumped
  EXPECT_EQ(vcd.find("#10"), std::string::npos);  // only 'in' changed at 10
  EXPECT_NE(vcd.find("#11"), std::string::npos);
  // unknown names ignored
  EXPECT_FALSE(to_vcd(sim, {"nope"}).empty());
}

TEST(Vcd, XAndZValuesRendered) {
  Circuit c;
  (void)c.add_signal("s");
  Simulator sim(std::move(c));
  (void)sim.inject(0, "s", Logic::Z);
  (void)sim.inject(5, "s", Logic::X);
  (void)sim.run(10);
  std::string vcd = to_vcd(sim);
  EXPECT_NE(vcd.find("#0\nz!"), std::string::npos);
  EXPECT_NE(vcd.find("#5\nx!"), std::string::npos);
}

TEST(Vcd, ManySignalsGetDistinctCodes) {
  Circuit c;
  int prev = c.add_signal("in");
  for (int i = 0; i < 120; ++i) {  // exceeds one code character (94)
    int out = c.add_signal("s" + std::to_string(i));
    c.gates.push_back({"NOT", {prev}, out, 1});
    prev = out;
  }
  Simulator sim(std::move(c));
  (void)sim.inject(0, "in", Logic::L0);
  (void)sim.run(1000);
  std::string vcd = to_vcd(sim);
  // every $var line has a unique identifier
  std::set<std::string> codes;
  for (const auto& line : support::split(vcd, '\n')) {
    auto words = support::split_ws(line);
    if (words.size() == 6 && words[0] == "$var") {
      EXPECT_TRUE(codes.insert(words[3]).second) << "duplicate code " << words[3];
    }
  }
  EXPECT_EQ(codes.size(), 121u);
}

TEST(Vcd, Deterministic) {
  Simulator a = simulate_inverter();
  Simulator b = simulate_inverter();
  EXPECT_EQ(to_vcd(a), to_vcd(b));
}

}  // namespace
}  // namespace jfm::tools
