// Durable hybrid (docs/persistence.md): a HybridFramework built with
// durable_store journals the JCF master database into /oms of its own
// file system. These tests simulate a crash by carrying the /oms
// subtree bytes -- and nothing else -- into a brand-new framework
// instance: open_store() recovers the JCF side, bootstrap() and the
// project/cell helpers adopt the recovered resources instead of
// duplicating them, and design data checked into the OMS reads back
// through the coupling unchanged even though the FMCAD slave library
// started empty.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "jfm/coupling/hybrid.hpp"

namespace jfm::coupling {
namespace {

using support::Errc;

std::vector<ToolCommand> tiny_schematic() {
  return {
      {"add-port", {"a", "in"}},  {"add-port", {"y", "out"}},
      {"add-prim", {"g0", "NOT"}}, {"connect", {"a", "g0", "a"}},
      {"connect", {"y", "g0", "y"}},
  };
}

// The "disk that survives the crash": copy one subtree between two
// otherwise independent in-memory file systems.
void copy_tree(vfs::FileSystem& src, vfs::FileSystem& dst, const vfs::Path& dir) {
  ASSERT_TRUE(dst.mkdirs(dir).ok());
  auto names = src.list(dir);
  ASSERT_TRUE(names.ok());
  for (const auto& name : *names) {
    const vfs::Path child = dir.child(name);
    auto st = src.stat(child);
    ASSERT_TRUE(st.ok());
    if (st->is_directory) {
      copy_tree(src, dst, child);
    } else {
      auto bytes = src.read_file(child);
      ASSERT_TRUE(bytes.ok());
      ASSERT_TRUE(dst.write_file(child, *bytes).ok());
    }
  }
}

HybridConfig durable_config() {
  HybridConfig config;
  config.durable_store = true;
  return config;
}

TEST(CouplingPersistenceTest, OpenStoreRequiresDurableStore) {
  HybridFramework hybrid;
  auto st = hybrid.open_store();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, Errc::invalid_argument);
}

TEST(CouplingPersistenceTest, ReopenedFrameworkAdoptsRecoveredResources) {
  HybridFramework first(durable_config());
  ASSERT_TRUE(first.open_store().ok());
  ASSERT_TRUE(first.bootstrap().ok());
  auto alice = first.add_designer("alice");
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(first.create_project("p").ok());
  ASSERT_TRUE(first.create_cell("p", "c", *alice).ok());
  ASSERT_TRUE(first.reserve_cell("p", "c", *alice).ok());
  auto run = first.run_activity("p", "c", "enter_schematic", *alice, tiny_schematic());
  ASSERT_TRUE(run.ok()) << run.error().to_text();
  auto before = first.open_read_only("p", "c", "schematic", *alice);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(first.jcf().store().flush_wal().ok());

  // "Crash": only the journal directory survives into the new instance.
  HybridFramework second(durable_config());
  copy_tree(first.fs(), second.fs(), vfs::Path().child("oms"));
  ASSERT_TRUE(second.open_store().ok());
  EXPECT_GT(second.jcf().store().wal_stats().replayed_records, 0u);

  // bootstrap()/add_designer()/create_project()/create_cell() resolve
  // the recovered resources instead of re-creating them.
  ASSERT_TRUE(second.bootstrap().ok());
  EXPECT_TRUE(second.jcf().flow_frozen(second.standard_flow()).ok());
  auto alice2 = second.add_designer("alice");
  ASSERT_TRUE(alice2.ok());
  ASSERT_TRUE(second.create_project("p").ok());

  // The design data lives in the recovered master database and reads
  // back through the coupling even though the slave library is fresh.
  auto after = second.open_read_only("p", "c", "schematic", *alice2);
  ASSERT_TRUE(after.ok()) << after.error().to_text();
  EXPECT_EQ(*after, *before);

  // create_cell adopts the recovered JCF cell (rebuilding only the
  // FMCAD side); a genuine duplicate in the SAME instance still fails.
  ASSERT_TRUE(second.create_cell("p", "c", *alice2).ok());
  auto dup = second.create_cell("p", "c", *alice2);
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.error().code, Errc::already_exists);
}

TEST(CouplingPersistenceTest, VolatileFrameworkBehavesAsBefore) {
  HybridFramework hybrid;  // durable_store off: the paper's prototype
  ASSERT_TRUE(hybrid.bootstrap().ok());
  auto alice = hybrid.add_designer("alice");
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(hybrid.create_project("p").ok());
  ASSERT_TRUE(hybrid.create_cell("p", "c", *alice).ok());
  EXPECT_FALSE(hybrid.jcf().store().wal_stats().attached);
  auto dup = hybrid.create_cell("p", "c", *alice);
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.error().code, Errc::already_exists);
}

}  // namespace
}  // namespace jfm::coupling
