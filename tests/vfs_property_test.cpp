// Property suite for the virtual file system: a random operation
// sequence applied to both the vfs and a simple reference model
// (path -> content map) must agree on every observable.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "jfm/support/rng.hpp"
#include "jfm/vfs/filesystem.hpp"

namespace jfm::vfs {
namespace {

struct Model {
  std::set<std::string> dirs{"/"};
  std::map<std::string, std::string> files;

  static std::string parent_of(const std::string& path) {
    auto pos = path.rfind('/');
    return pos == 0 ? "/" : path.substr(0, pos);
  }
  bool exists(const std::string& path) const {
    return dirs.contains(path) || files.contains(path);
  }
};

struct VfsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VfsProperty, AgreesWithReferenceModel) {
  support::SimClock clock;
  FileSystem fs(&clock);
  Model model;
  support::Rng rng(GetParam());

  // a small namespace of candidate paths keeps collisions frequent
  std::vector<std::string> names = {"a", "b", "c", "d"};
  auto random_path = [&] {
    std::string path;
    int depth = 1 + static_cast<int>(rng.below(3));
    for (int i = 0; i < depth; ++i) path += "/" + names[rng.below(names.size())];
    return path;
  };

  for (int op = 0; op < 400; ++op) {
    const std::string path = random_path();
    const Path vpath = *Path::parse(path);
    switch (rng.below(5)) {
      case 0: {  // mkdir
        bool parent_ok = model.dirs.contains(Model::parent_of(path));
        bool free = !model.exists(path);
        auto st = fs.mkdir(vpath);
        EXPECT_EQ(st.ok(), parent_ok && free) << "mkdir " << path << " op " << op;
        if (st.ok()) model.dirs.insert(path);
        break;
      }
      case 1: {  // write
        bool parent_ok = model.dirs.contains(Model::parent_of(path));
        bool not_dir = !model.dirs.contains(path);
        std::string content = rng.identifier(1 + rng.below(16));
        auto st = fs.write_file(vpath, content);
        EXPECT_EQ(st.ok(), parent_ok && not_dir) << "write " << path << " op " << op;
        if (st.ok()) model.files[path] = content;
        break;
      }
      case 2: {  // read
        auto content = fs.read_file(vpath);
        auto it = model.files.find(path);
        EXPECT_EQ(content.ok(), it != model.files.end()) << "read " << path << " op " << op;
        if (content.ok()) EXPECT_EQ(*content, it->second);
        break;
      }
      case 3: {  // remove (non-recursive)
        bool is_file = model.files.contains(path);
        bool is_empty_dir = model.dirs.contains(path) && [&] {
          for (const auto& d : model.dirs) {
            if (d != path && d.starts_with(path + "/")) return false;
          }
          for (const auto& [f, c] : model.files) {
            if (f.starts_with(path + "/")) return false;
          }
          return true;
        }();
        auto st = fs.remove(vpath);
        EXPECT_EQ(st.ok(), is_file || is_empty_dir) << "remove " << path << " op " << op;
        if (st.ok()) {
          model.files.erase(path);
          model.dirs.erase(path);
        }
        break;
      }
      case 4: {  // stat / exists
        EXPECT_EQ(fs.exists(vpath), model.exists(path)) << path;
        auto st = fs.stat(vpath);
        if (model.files.contains(path)) {
          ASSERT_TRUE(st.ok());
          EXPECT_FALSE(st->is_directory);
          EXPECT_EQ(st->size, model.files[path].size());
        } else if (model.dirs.contains(path)) {
          ASSERT_TRUE(st.ok());
          EXPECT_TRUE(st->is_directory);
        } else {
          EXPECT_FALSE(st.ok());
        }
        break;
      }
    }
  }

  // final sweep: every model file readable with exact content; listings
  // contain exactly the model's children
  for (const auto& [path, content] : model.files) {
    auto read = fs.read_file(*Path::parse(path));
    ASSERT_TRUE(read.ok()) << path;
    EXPECT_EQ(*read, content);
  }
  for (const auto& dir : model.dirs) {
    auto names_in_dir = fs.list(*Path::parse(dir));
    ASSERT_TRUE(names_in_dir.ok()) << dir;
    std::set<std::string> expected;
    const std::string prefix = dir == "/" ? "/" : dir + "/";
    for (const auto& d : model.dirs) {
      if (d != dir && d.starts_with(prefix) && d.find('/', prefix.size()) == std::string::npos) {
        expected.insert(d.substr(prefix.size()));
      }
    }
    for (const auto& [f, c] : model.files) {
      if (f.starts_with(prefix) && f.find('/', prefix.size()) == std::string::npos) {
        expected.insert(f.substr(prefix.size()));
      }
    }
    std::set<std::string> actual(names_in_dir->begin(), names_in_dir->end());
    EXPECT_EQ(actual, expected) << dir;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VfsProperty, ::testing::Range<std::uint64_t>(300, 312));

}  // namespace
}  // namespace jfm::vfs
