// Incremental checkout contract (docs/incremental-checkout.md). The
// headline property, parameterized over seeds: a workspace synced
// through the change-feed delta path stays BIT-IDENTICAL to a
// full-walk oracle world driven by the same randomized op stream --
// including across structure changes (new cells wired under the root),
// which must invalidate the cursor and force a full re-walk. Plus: the
// JCF change feed itself, cursor bookkeeping, the ablation flag, and a
// fault-injected leg where a mid-delta failure rolls back and leaves
// the cursor unmoved.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "jfm/coupling/hybrid.hpp"
#include "jfm/support/faultsim.hpp"
#include "test_seed.hpp"

namespace jfm::coupling {
namespace {

namespace faultsim = support::faultsim;

std::vector<ToolCommand> tiny_schematic() {
  return {
      {"add-port", {"a", "in"}},  {"add-port", {"y", "out"}},
      {"add-prim", {"g0", "NOT"}}, {"connect", {"a", "g0", "a"}},
      {"connect", {"y", "g0", "y"}},
  };
}

/// A re-edit adding one fresh net; unique names keep the tool happy
/// and make every edit a genuine new payload.
std::vector<ToolCommand> edit(int step) {
  return {{"add-net", {"n" + std::to_string(step)}}};
}

/// root-relative path -> content for every file under `root`.
std::map<std::string, std::string> tree_contents(vfs::FileSystem& fs, const vfs::Path& root) {
  std::map<std::string, std::string> out;
  if (!fs.exists(root)) return out;
  auto files = fs.walk_files(root);
  if (!files.ok()) return out;
  const std::string prefix = root.str() + "/";
  for (const auto& file : *files) {
    auto content = fs.read_file(file);
    if (!content.ok()) continue;
    std::string key = file.str();
    if (key.rfind(prefix, 0) == 0) key.erase(0, prefix.size());
    out[key] = *content;
  }
  return out;
}

struct World {
  std::unique_ptr<HybridFramework> hybrid;
  jcf::UserRef alice;
  std::vector<std::string> cells;
};

World build_world(bool incremental_on) {
  World w;
  HybridConfig config;
  config.content_addressed_cache = true;
  config.incremental_checkout = incremental_on;
  w.hybrid = std::make_unique<HybridFramework>(config);
  EXPECT_TRUE(w.hybrid->bootstrap().ok());
  w.alice = *w.hybrid->add_designer("alice");
  EXPECT_TRUE(w.hybrid->create_project("p").ok());
  for (const char* cell : {"top", "alu", "regfile"}) {
    EXPECT_TRUE(w.hybrid->create_cell("p", cell, w.alice).ok());
    EXPECT_TRUE(w.hybrid->reserve_cell("p", cell, w.alice).ok());
    auto run = w.hybrid->run_activity("p", cell, "enter_schematic", w.alice, tiny_schematic());
    EXPECT_TRUE(run.ok()) << run.error().to_text();
    w.cells.push_back(cell);
  }
  EXPECT_TRUE(w.hybrid->declare_child("p", "top", "alu").ok());
  EXPECT_TRUE(w.hybrid->declare_child("p", "top", "regfile").ok());
  return w;
}

/// One randomized mutation round applied identically to both worlds:
/// re-edit some cells, occasionally grow the hierarchy (a structure
/// change the delta path must not paper over).
void mutate(World& w, std::mt19937& rng, int* step) {
  const std::uint32_t roll = rng();
  if (roll % 5 == 0) {
    const std::string cell = "gen" + std::to_string((*step)++);
    ASSERT_TRUE(w.hybrid->create_cell("p", cell, w.alice).ok());
    ASSERT_TRUE(w.hybrid->reserve_cell("p", cell, w.alice).ok());
    auto run = w.hybrid->run_activity("p", cell, "enter_schematic", w.alice, tiny_schematic());
    ASSERT_TRUE(run.ok()) << run.error().to_text();
    ASSERT_TRUE(w.hybrid->declare_child("p", "top", cell).ok());
    w.cells.push_back(cell);
  }
  const int edits = 1 + static_cast<int>(roll % 2);
  for (int e = 0; e < edits; ++e) {
    const auto& cell = w.cells[rng() % w.cells.size()];
    auto run = w.hybrid->run_activity("p", cell, "enter_schematic", w.alice, edit((*step)++));
    ASSERT_TRUE(run.ok()) << run.error().to_text();
  }
}

class IncrementalCheckoutProperty : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  void TearDown() override { faultsim::Injector::global().disarm(); }
};

TEST_P(IncrementalCheckoutProperty, DeltaSyncsStayBitIdenticalToTheFullWalkOracle) {
  const std::uint32_t seed = GetParam();
  World incr = build_world(/*incremental_on=*/true);
  World full = build_world(/*incremental_on=*/false);
  // Same generator state for both worlds: identical op streams.
  std::mt19937 incr_rng(seed);
  std::mt19937 full_rng(seed);
  const auto dst = vfs::Path().child("scratch").child("sync");
  int incr_step = 0;
  int full_step = 0;
  for (int round = 0; round < 8; ++round) {
    if (round > 0) {
      mutate(incr, incr_rng, &incr_step);
      mutate(full, full_rng, &full_step);
    }
    auto a = incr.hybrid->checkout_hierarchy("p", "top", incr.alice, dst);
    auto b = full.hybrid->checkout_hierarchy("p", "top", full.alice, dst);
    ASSERT_TRUE(a.ok()) << a.error().to_text();
    ASSERT_TRUE(b.ok()) << b.error().to_text();
    ASSERT_TRUE(a->failures.empty());
    ASSERT_TRUE(b->failures.empty());
    // The ablation world must never take the delta path.
    EXPECT_FALSE(b->incremental);
    EXPECT_EQ(tree_contents(incr.hybrid->fs(), dst), tree_contents(full.hybrid->fs(), dst))
        << "seed " << seed << " round " << round;
  }
  // The delta path actually ran: at least one repeat sync of an
  // unchanged-structure round rode the change feed.
  const auto cursors = incr.hybrid->checkout_cursors();
  ASSERT_EQ(cursors.size(), 1u);
  EXPECT_GT(cursors.begin()->second.incremental_syncs, 0u) << "seed " << seed;
  EXPECT_EQ(cursors.begin()->second.syncs, 8u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalCheckoutProperty,
                         ::testing::ValuesIn(jfm::testing::test_seeds(
                             "incremental-checkout", {5u, 29u, 0xCAFEu, 0xF00DFACEu})));

// ---------------------------------------------------------------------------
// Deterministic behaviours.

class IncrementalCheckoutTest : public ::testing::Test {
 protected:
  void TearDown() override { faultsim::Injector::global().disarm(); }
};

TEST_F(IncrementalCheckoutTest, JcfChangeFeedReportsCreatedAndSupersededDovs) {
  World w = build_world(/*incremental_on=*/true);
  auto& jcf = w.hybrid->jcf();
  const std::uint64_t cursor = jcf.store().epoch();
  auto run = w.hybrid->run_activity("p", "alu", "enter_schematic", w.alice, edit(0));
  ASSERT_TRUE(run.ok()) << run.error().to_text();
  ASSERT_TRUE(w.hybrid->publish_cell("p", "alu", w.alice).ok());

  auto changes = jcf.dovs_changed_since(cursor);
  ASSERT_FALSE(changes.empty());
  bool saw_published = false;
  for (const auto& change : changes) {
    EXPECT_TRUE(change.dov.id.valid());
    EXPECT_TRUE(change.dobj.id.valid());
    EXPECT_GT(change.modified, cursor);
    saw_published = saw_published || change.published;
  }
  EXPECT_TRUE(saw_published);
  // The feed is empty once the cursor catches up.
  EXPECT_TRUE(jcf.dovs_changed_since(jcf.store().epoch()).empty());
}

TEST_F(IncrementalCheckoutTest, StructureChangesInvalidateTheCursor) {
  World w = build_world(/*incremental_on=*/true);
  const auto dst = vfs::Path().child("scratch").child("inv");
  ASSERT_TRUE(w.hybrid->checkout_hierarchy("p", "top", w.alice, dst).ok());
  const std::uint64_t structure_before = w.hybrid->jcf().structure_epoch();

  // Publishing new content does NOT move the structure epoch...
  ASSERT_TRUE(w.hybrid->run_activity("p", "alu", "enter_schematic", w.alice, edit(1)).ok());
  EXPECT_EQ(w.hybrid->jcf().structure_epoch(), structure_before);
  auto delta = w.hybrid->checkout_hierarchy("p", "top", w.alice, dst);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->incremental);

  // ...but growing the hierarchy does, and the next sync re-walks.
  ASSERT_TRUE(w.hybrid->create_cell("p", "mul", w.alice).ok());
  ASSERT_TRUE(w.hybrid->reserve_cell("p", "mul", w.alice).ok());
  ASSERT_TRUE(
      w.hybrid->run_activity("p", "mul", "enter_schematic", w.alice, tiny_schematic()).ok());
  ASSERT_TRUE(w.hybrid->declare_child("p", "top", "mul").ok());
  EXPECT_GT(w.hybrid->jcf().structure_epoch(), structure_before);
  auto rewalk = w.hybrid->checkout_hierarchy("p", "top", w.alice, dst);
  ASSERT_TRUE(rewalk.ok());
  EXPECT_FALSE(rewalk->incremental);
  EXPECT_EQ(rewalk->cells, 4u);
}

TEST_F(IncrementalCheckoutTest, UnchangedRepeatSyncSkipsEverything) {
  World w = build_world(/*incremental_on=*/true);
  const auto dst = vfs::Path().child("scratch").child("skip");
  auto first = w.hybrid->checkout_hierarchy("p", "top", w.alice, dst);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->incremental);  // no cursor yet: full walk

  auto second = w.hybrid->checkout_hierarchy("p", "top", w.alice, dst);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->incremental);
  EXPECT_EQ(second->requested, 0u);
  EXPECT_EQ(second->feed_size, 0u);
  EXPECT_EQ(second->skipped, 3u);  // the three known cellviews
}

TEST_F(IncrementalCheckoutTest, FailedDeltaRollsBackAndLeavesTheCursorUnmoved) {
  World w = build_world(/*incremental_on=*/true);
  auto& fs = w.hybrid->fs();
  const auto dst = vfs::Path().child("scratch").child("faulty");
  ASSERT_TRUE(w.hybrid->checkout_hierarchy("p", "top", w.alice, dst).ok());
  const auto cursor_before = w.hybrid->checkout_cursors();
  ASSERT_EQ(cursor_before.size(), 1u);
  const auto pre_state = tree_contents(fs, dst);
  ASSERT_EQ(pre_state.size(), 3u);

  ASSERT_TRUE(w.hybrid->run_activity("p", "alu", "enter_schematic", w.alice, edit(2)).ok());

  // Every export attempt of the one-item delta faults: the sync fails,
  // rolls the destination back, and must NOT advance the cursor.
  auto plan = faultsim::parse_plan("transfer.export_item@1,2,3,4");
  ASSERT_TRUE(plan.ok());
  faultsim::Injector::global().arm(std::move(*plan));
  auto failed = w.hybrid->checkout_hierarchy("p", "top", w.alice, dst);
  faultsim::Injector::global().disarm();
  ASSERT_TRUE(failed.ok()) << failed.error().to_text();
  EXPECT_TRUE(failed->incremental);
  EXPECT_EQ(failed->failures.size(), 1u);
  EXPECT_TRUE(failed->rolled_back);
  EXPECT_EQ(tree_contents(fs, dst), pre_state);
  const auto cursor_after = w.hybrid->checkout_cursors();
  ASSERT_EQ(cursor_after.size(), 1u);
  EXPECT_EQ(cursor_after.begin()->second.epoch, cursor_before.begin()->second.epoch);

  // The retry re-derives the same delta from the unmoved cursor and
  // converges to the fault-free oracle.
  const auto oracle_dst = vfs::Path().child("scratch").child("oracle");
  auto oracle = w.hybrid->checkout_hierarchy_full("p", "top", w.alice, oracle_dst);
  ASSERT_TRUE(oracle.ok());
  auto retry = w.hybrid->checkout_hierarchy("p", "top", w.alice, dst);
  ASSERT_TRUE(retry.ok());
  EXPECT_TRUE(retry->incremental);
  EXPECT_TRUE(retry->failures.empty());
  EXPECT_EQ(tree_contents(fs, dst), tree_contents(fs, oracle_dst));
}

TEST_F(IncrementalCheckoutTest, AblationConfigNeverTakesTheDeltaPath) {
  World w = build_world(/*incremental_on=*/false);
  const auto dst = vfs::Path().child("scratch").child("abl");
  for (int i = 0; i < 3; ++i) {
    auto report = w.hybrid->checkout_hierarchy("p", "top", w.alice, dst);
    ASSERT_TRUE(report.ok());
    EXPECT_FALSE(report->incremental);
    EXPECT_EQ(report->cells, 3u);
  }
}

}  // namespace
}  // namespace jfm::coupling
