// Inter-project data sharing -- the s3.1 future-work extension ("it
// would be helpful to also provide access to cells of other projects")
// plus framework checkpoint/restore through the OMS dump.

#include <gtest/gtest.h>

#include "jfm/jcf/framework.hpp"

namespace jfm::jcf {
namespace {

using support::Errc;

class SharingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    user = *jcf.create_user("alice");
    team = *jcf.create_team("rtl");
    ASSERT_TRUE(jcf.add_member(team, user).ok());
    auto tool = *jcf.register_tool("t");
    vt = *jcf.create_viewtype("schematic");
    auto act = *jcf.create_activity("a", tool, {}, {vt});
    flow = *jcf.create_flow("f", {act});
    ASSERT_TRUE(jcf.freeze_flow(flow).ok());
    ip_library = *jcf.create_project("ip_library", team);
    soc = *jcf.create_project("soc", team);
  }

  CellRef published_cell(ProjectRef project, const std::string& name) {
    auto cell = *jcf.create_cell(project, name, flow, team);
    auto cv = *jcf.create_cell_version(cell, user);
    EXPECT_TRUE(jcf.reserve(cv, user).ok());
    auto variant = *jcf.create_variant(cv, "work", user);
    auto dobj = *jcf.create_design_object(variant, "schematic", vt, user);
    (void)*jcf.create_dov(dobj, "ip data", user);
    EXPECT_TRUE(jcf.publish(cv, user).ok());
    return cell;
  }

  support::SimClock clock;
  JcfFramework jcf{&clock};
  UserRef user;
  TeamRef team;
  ViewTypeRef vt;
  FlowRef flow;
  ProjectRef ip_library, soc;
};

TEST_F(SharingTest, SharedCellVisibleInBorrowingProject) {
  auto cell = published_cell(ip_library, "uart");
  EXPECT_EQ(jcf.find_cell(soc, "uart").code(), Errc::not_found);
  ASSERT_TRUE(jcf.share_cell(soc, cell).ok());
  auto found = jcf.find_cell(soc, "uart");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, cell);
  // ownership is unchanged
  EXPECT_EQ(*jcf.project_of(cell), ip_library);
  auto shared = jcf.shared_cells(soc);
  ASSERT_TRUE(shared.ok());
  ASSERT_EQ(shared->size(), 1u);
  // own cells list does not grow
  EXPECT_TRUE(jcf.cells(soc)->empty());
}

TEST_F(SharingTest, OnlyPublishedCellsCanBeShared) {
  auto cell = *jcf.create_cell(ip_library, "wip", flow, team);
  (void)*jcf.create_cell_version(cell, user);  // never published
  auto st = jcf.share_cell(soc, cell);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, Errc::permission_denied);
  // a cell with no versions at all
  auto bare = *jcf.create_cell(ip_library, "bare", flow, team);
  EXPECT_EQ(jcf.share_cell(soc, bare).code(), Errc::not_found);
}

TEST_F(SharingTest, CannotShareIntoOwnProjectOrTwice) {
  auto cell = published_cell(ip_library, "uart");
  EXPECT_EQ(jcf.share_cell(ip_library, cell).code(), Errc::invalid_argument);
  ASSERT_TRUE(jcf.share_cell(soc, cell).ok());
  EXPECT_EQ(jcf.share_cell(soc, cell).code(), Errc::already_exists);
}

TEST_F(SharingTest, SharedDataReadableAcrossProjects) {
  auto cell = published_cell(ip_library, "uart");
  ASSERT_TRUE(jcf.share_cell(soc, cell).ok());
  auto found = *jcf.find_cell(soc, "uart");
  auto cv = *jcf.latest_cell_version(found);
  auto variant = *jcf.find_variant(cv, "work");
  auto dobj = *jcf.find_design_object(variant, "schematic");
  auto dov = *jcf.latest_dov(dobj);
  auto stranger = *jcf.create_user("bob");
  auto data = jcf.dov_data(dov, stranger);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "ip data");
}

TEST_F(SharingTest, OwnCellShadowsSharedOnLookup) {
  auto ip_cell = published_cell(ip_library, "uart");
  ASSERT_TRUE(jcf.share_cell(soc, ip_cell).ok());
  auto own = *jcf.create_cell(soc, "uart", flow, team);
  auto found = jcf.find_cell(soc, "uart");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, own);  // project_cell searched before project_shared
}

TEST_F(SharingTest, CheckpointRestoreRoundTrip) {
  auto cell = published_cell(ip_library, "uart");
  ASSERT_TRUE(jcf.share_cell(soc, cell).ok());
  vfs::FileSystem fs(&clock);
  ASSERT_TRUE(fs.mkdirs(vfs::Path().child("db")).ok());
  auto file = vfs::Path().child("db").child("jcf.oms");
  ASSERT_TRUE(jcf.checkpoint(fs, file).ok());

  JcfFramework restored(&clock);
  ASSERT_TRUE(restored.restore(fs, file).ok());
  // the full object graph survives, ids included
  auto project = restored.find_project("ip_library");
  ASSERT_TRUE(project.ok());
  auto found = restored.find_cell(*restored.find_project("soc"), "uart");
  ASSERT_TRUE(found.ok());
  auto cv = *restored.latest_cell_version(*found);
  auto variant = *restored.find_variant(cv, "work");
  auto dobj = *restored.find_design_object(variant, "schematic");
  auto dov = *restored.latest_dov(dobj);
  auto reader = restored.find_user("alice");
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(*restored.dov_data(dov, *reader), "ip data");
  // restoring into a non-empty framework is refused
  EXPECT_EQ(restored.restore(fs, file).code(), Errc::invalid_argument);
}

TEST_F(SharingTest, CheckpointIsStable) {
  (void)published_cell(ip_library, "uart");
  vfs::FileSystem fs(&clock);
  ASSERT_TRUE(fs.mkdirs(vfs::Path().child("db")).ok());
  auto f1 = vfs::Path().child("db").child("a.oms");
  auto f2 = vfs::Path().child("db").child("b.oms");
  ASSERT_TRUE(jcf.checkpoint(fs, f1).ok());
  JcfFramework restored(&clock);
  ASSERT_TRUE(restored.restore(fs, f1).ok());
  ASSERT_TRUE(restored.checkpoint(fs, f2).ok());
  EXPECT_EQ(*fs.read_file(f1), *fs.read_file(f2));
}

}  // namespace
}  // namespace jfm::jcf
