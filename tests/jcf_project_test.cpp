// JCF project data: cells, two-level versioning (cell versions +
// variants), design objects, configurations, the CompOf hierarchy and
// equivalence relations (Figure 1).

#include <gtest/gtest.h>

#include "jfm/jcf/framework.hpp"

namespace jfm::jcf {
namespace {

using support::Errc;

class ProjectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    user = *jcf.create_user("alice");
    team = *jcf.create_team("rtl");
    ASSERT_TRUE(jcf.add_member(team, user).ok());
    tool = *jcf.register_tool("t");
    vt_sch = *jcf.create_viewtype("schematic");
    vt_lay = *jcf.create_viewtype("layout");
    auto act = *jcf.create_activity("a", tool, {}, {vt_sch});
    flow = *jcf.create_flow("f", {act});
    ASSERT_TRUE(jcf.freeze_flow(flow).ok());
    project = *jcf.create_project("chip", team);
  }

  /// cell + version + reserved workspace + one variant
  std::pair<CellVersionRef, VariantRef> make_cv(const std::string& name) {
    auto cell = *jcf.create_cell(project, name, flow, team);
    auto cv = *jcf.create_cell_version(cell, user);
    EXPECT_TRUE(jcf.reserve(cv, user).ok());
    auto variant = *jcf.create_variant(cv, "work", user);
    return {cv, variant};
  }

  support::SimClock clock;
  JcfFramework jcf{&clock};
  UserRef user;
  TeamRef team;
  ToolRef tool;
  ViewTypeRef vt_sch, vt_lay;
  FlowRef flow;
  ProjectRef project;
};

TEST_F(ProjectTest, CellsAreScopedToProjects) {
  auto cell = jcf.create_cell(project, "alu", flow, team);
  ASSERT_TRUE(cell.ok());
  EXPECT_EQ(jcf.create_cell(project, "alu", flow, team).code(), Errc::already_exists);
  auto other = *jcf.create_project("chip2", team);
  EXPECT_TRUE(jcf.create_cell(other, "alu", flow, team).ok());  // same name, other project
  EXPECT_EQ(*jcf.find_cell(project, "alu"), *cell);
  EXPECT_EQ(jcf.find_cell(other, "ghost").code(), Errc::not_found);
  EXPECT_EQ(jcf.cells(project)->size(), 1u);
}

TEST_F(ProjectTest, UnfrozenFlowCannotDriveCells) {
  auto act = *jcf.create_activity("x", tool, {}, {vt_sch});
  auto loose = *jcf.create_flow("loose", {act});
  EXPECT_EQ(jcf.create_cell(project, "c", loose, team).code(), Errc::invalid_argument);
}

TEST_F(ProjectTest, CellVersionNumberingAndPrecedes) {
  auto cell = *jcf.create_cell(project, "alu", flow, team);
  auto v1 = *jcf.create_cell_version(cell, user);
  auto v2 = *jcf.create_cell_version(cell, user);
  auto v3 = *jcf.create_cell_version(cell, user);
  EXPECT_EQ(*jcf.version_number(v1), 1);
  EXPECT_EQ(*jcf.version_number(v3), 3);
  EXPECT_EQ(*jcf.latest_cell_version(cell), v3);
  EXPECT_EQ(jcf.cell_versions(cell)->size(), 3u);
  EXPECT_EQ(*jcf.cell_of(v2), cell);
  // precedes chain recorded in the store
  EXPECT_TRUE(jcf.store().linked(rel::cv_precedes, v1.id, v2.id));
  EXPECT_TRUE(jcf.store().linked(rel::cv_precedes, v2.id, v3.id));
  EXPECT_FALSE(jcf.store().linked(rel::cv_precedes, v1.id, v3.id));
}

TEST_F(ProjectTest, VersionCreationRequiresTeamMembership) {
  auto outsider = *jcf.create_user("eve");
  auto cell = *jcf.create_cell(project, "alu", flow, team);
  auto denied = jcf.create_cell_version(cell, outsider);
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.error().code, Errc::permission_denied);
}

TEST_F(ProjectTest, PerVersionFlowAndTeamOverrides) {
  auto [cv, variant] = make_cv("alu");
  EXPECT_EQ(*jcf.effective_flow(cv), flow);
  EXPECT_EQ(*jcf.effective_team(cv), team);
  auto act = *jcf.create_activity("alt", tool, {}, {vt_sch});
  auto flow2 = *jcf.create_flow("f2", {act});
  ASSERT_TRUE(jcf.freeze_flow(flow2).ok());
  ASSERT_TRUE(jcf.override_flow(cv, flow2).ok());
  EXPECT_EQ(*jcf.effective_flow(cv), flow2);
  auto team2 = *jcf.create_team("backend");
  ASSERT_TRUE(jcf.override_team(cv, team2).ok());
  EXPECT_EQ(*jcf.effective_team(cv), team2);
  // the cell's own attachments are untouched
  auto cv2 = jcf.create_cell_version(*jcf.find_cell(project, "alu"), user);
  ASSERT_TRUE(cv2.ok());
  EXPECT_EQ(*jcf.effective_flow(*cv2), flow);
}

TEST_F(ProjectTest, VariantsNeedWorkspaceAndUniqueNames) {
  auto cell = *jcf.create_cell(project, "alu", flow, team);
  auto cv = *jcf.create_cell_version(cell, user);
  // not reserved yet
  EXPECT_EQ(jcf.create_variant(cv, "v", user).code(), Errc::permission_denied);
  ASSERT_TRUE(jcf.reserve(cv, user).ok());
  auto v1 = jcf.create_variant(cv, "v", user);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(jcf.create_variant(cv, "v", user).code(), Errc::already_exists);
  auto v2 = jcf.create_variant(cv, "v2", user);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(jcf.variants(cv)->size(), 2u);
  EXPECT_EQ(*jcf.find_variant(cv, "v2"), *v2);
  EXPECT_EQ(*jcf.cell_version_of(*v2), cv);
}

TEST_F(ProjectTest, DesignObjectsAndVersions) {
  auto [cv, variant] = make_cv("alu");
  auto dobj = jcf.create_design_object(variant, "schematic", vt_sch, user);
  ASSERT_TRUE(dobj.ok());
  EXPECT_EQ(jcf.create_design_object(variant, "schematic", vt_sch, user).code(),
            Errc::already_exists);
  EXPECT_EQ(*jcf.viewtype_of(*dobj), vt_sch);
  EXPECT_EQ(jcf.latest_dov(*dobj).code(), Errc::not_found);

  auto d1 = jcf.create_dov(*dobj, "rev one", user);
  auto d2 = jcf.create_dov(*dobj, "rev two", user);
  ASSERT_TRUE(d1.ok() && d2.ok());
  EXPECT_EQ(*jcf.dov_number(*d1), 1);
  EXPECT_EQ(*jcf.dov_number(*d2), 2);
  EXPECT_EQ(*jcf.latest_dov(*dobj), *d2);
  EXPECT_EQ(*jcf.design_object_of(*d2), *dobj);
  EXPECT_TRUE(jcf.store().linked(rel::dov_precedes, d1->id, d2->id));
  EXPECT_EQ(*jcf.dov_data(*d2, user), "rev two");
}

TEST_F(ProjectTest, EquivalenceIsSymmetric) {
  auto [cv, variant] = make_cv("alu");
  auto dobj = *jcf.create_design_object(variant, "schematic", vt_sch, user);
  auto d1 = *jcf.create_dov(dobj, "a", user);
  auto d2 = *jcf.create_dov(dobj, "b", user);
  ASSERT_TRUE(jcf.set_equivalent(d1, d2).ok());
  EXPECT_TRUE(*jcf.is_equivalent(d1, d2));
  EXPECT_TRUE(*jcf.is_equivalent(d2, d1));
  EXPECT_EQ(jcf.set_equivalent(d1, d1).code(), Errc::invalid_argument);
}

TEST_F(ProjectTest, CompOfHierarchyStaysAcyclic) {
  auto [top_cv, tv] = make_cv("top");
  auto [mid_cv, mv] = make_cv("mid");
  auto [leaf_cv, lv] = make_cv("leaf");
  ASSERT_TRUE(jcf.add_child(top_cv, mid_cv).ok());
  ASSERT_TRUE(jcf.add_child(mid_cv, leaf_cv).ok());
  EXPECT_EQ(jcf.add_child(leaf_cv, top_cv).code(), Errc::consistency_violation);
  EXPECT_EQ(jcf.add_child(top_cv, top_cv).code(), Errc::consistency_violation);
  EXPECT_EQ(jcf.children(top_cv)->size(), 1u);
  EXPECT_EQ(jcf.parents(leaf_cv)->size(), 1u);
  ASSERT_TRUE(jcf.remove_child(mid_cv, leaf_cv).ok());
  EXPECT_TRUE(jcf.children(mid_cv)->empty());
  // with the mid->leaf edge gone, leaf->top no longer closes a cycle
  EXPECT_TRUE(jcf.add_child(leaf_cv, top_cv).ok());
}

TEST_F(ProjectTest, ConfigurationHoldsOneVersionPerDesignObject) {
  auto [cv, variant] = make_cv("alu");
  auto dobj = *jcf.create_design_object(variant, "schematic", vt_sch, user);
  auto d1 = *jcf.create_dov(dobj, "a", user);
  auto d2 = *jcf.create_dov(dobj, "b", user);
  auto config = jcf.create_config(cv, "golden");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(jcf.create_config(cv, "golden").code(), Errc::already_exists);
  ASSERT_TRUE(jcf.add_config_member(*config, d1).ok());
  EXPECT_EQ(jcf.add_config_member(*config, d2).code(), Errc::consistency_violation);
  EXPECT_EQ(jcf.config_members(*config)->size(), 1u);
  // nested configurations
  auto sub = *jcf.create_config(cv, "sub");
  ASSERT_TRUE(jcf.add_config_child(*config, sub).ok());
  EXPECT_EQ(jcf.add_config_child(*config, *config).code(), Errc::invalid_argument);
}

}  // namespace
}  // namespace jfm::jcf
