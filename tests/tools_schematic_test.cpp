// Schematic model and the schematic entry tool.

#include <gtest/gtest.h>

#include "jfm/tools/schematic_tool.hpp"

namespace jfm::tools {
namespace {

using support::Errc;

Schematic buffer_schematic() {
  Schematic sch;
  sch.ports = {{"a", PortDir::in}, {"y", PortDir::out}};
  sch.nets = {"a", "y"};
  sch.primitives = {{"g0", "BUF"}};
  sch.connections = {{"a", "g0", "a"}, {"y", "g0", "y"}};
  return sch;
}

TEST(Schematic, SerializeParseRoundTrip) {
  Schematic sch = buffer_schematic();
  sch.instances = {{"u0", "child", "schematic"}};
  auto parsed = Schematic::parse(sch.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->serialize(), sch.serialize());
  EXPECT_EQ(parsed->ports.size(), 2u);
  EXPECT_EQ(parsed->instances[0].master_cell, "child");
}

TEST(Schematic, ParseErrors) {
  EXPECT_EQ(Schematic::parse("bogus line").code(), Errc::parse_error);
  EXPECT_EQ(Schematic::parse("port x sideways").code(), Errc::parse_error);
  // comments and blanks are fine
  EXPECT_TRUE(Schematic::parse("# comment\n\nnet n1\n").ok());
}

TEST(Schematic, Lookups) {
  Schematic sch = buffer_schematic();
  EXPECT_NE(sch.find_port("a"), nullptr);
  EXPECT_EQ(sch.find_port("zz"), nullptr);
  EXPECT_NE(sch.find_primitive("g0"), nullptr);
  EXPECT_TRUE(sch.has_net("y"));
  ASSERT_TRUE(sch.net_of("g0", "a").has_value());
  EXPECT_EQ(*sch.net_of("g0", "a"), "a");
  EXPECT_FALSE(sch.net_of("g0", "b").has_value());
}

TEST(Schematic, ValidateCatchesProblems) {
  EXPECT_TRUE(buffer_schematic().validate().ok());
  {
    Schematic s = buffer_schematic();
    s.nets.erase(s.nets.begin());  // port a has no net
    EXPECT_EQ(s.validate().code(), Errc::consistency_violation);
  }
  {
    Schematic s = buffer_schematic();
    s.primitives.push_back({"g1", "FROB"});
    EXPECT_EQ(s.validate().code(), Errc::invalid_argument);
  }
  {
    Schematic s = buffer_schematic();
    s.connections.push_back({"missing", "g0", "a"});
    EXPECT_EQ(s.validate().code(), Errc::consistency_violation);
  }
  {
    Schematic s = buffer_schematic();
    s.connections.push_back({"y", "ghost", "a"});
    EXPECT_EQ(s.validate().code(), Errc::consistency_violation);
  }
  {
    Schematic s = buffer_schematic();
    s.connections.push_back({"y", "g0", "a"});  // pin connected twice
    EXPECT_EQ(s.validate().code(), Errc::consistency_violation);
  }
  {
    Schematic s = buffer_schematic();
    s.connections.push_back({"y", "g0", "weird_pin"});
    EXPECT_EQ(s.validate().code(), Errc::invalid_argument);
  }
  {
    Schematic s = buffer_schematic();
    s.primitives.push_back({"g0", "AND"});  // duplicate element name
    EXPECT_EQ(s.validate().code(), Errc::already_exists);
  }
}

TEST(GateInfo, PinConventions) {
  EXPECT_TRUE(is_known_gate("NAND"));
  EXPECT_FALSE(is_known_gate("TRI"));
  EXPECT_EQ(gate_input_pins("NOT"), std::vector<std::string>{"a"});
  EXPECT_EQ(gate_input_pins("DFF"), (std::vector<std::string>{"d", "clk"}));
  EXPECT_EQ(gate_input_pins("XOR"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(gate_output_pin("DFF"), "q");
  EXPECT_EQ(gate_output_pin("AND"), "y");
}

class SchematicToolTest : public ::testing::Test {
 protected:
  fmcad::DesignFile doc() {
    fmcad::DesignFile d;
    d.cell = "alu";
    d.view = "schematic";
    d.viewtype = "schematic";
    return d;
  }
  fmcad::DesignFile apply_ok(fmcad::DesignFile d, const std::string& cmd,
                             const std::vector<std::string>& args) {
    auto out = tool.apply(d, cmd, args);
    EXPECT_TRUE(out.ok()) << cmd << ": " << (out.ok() ? "" : out.error().to_text());
    return out.ok() ? *out : d;
  }
  SchematicTool tool;
};

TEST_F(SchematicToolTest, BuildsValidDocument) {
  auto d = doc();
  d = apply_ok(d, "add-port", {"a", "in"});
  d = apply_ok(d, "add-port", {"y", "out"});
  d = apply_ok(d, "add-prim", {"g0", "NOT"});
  d = apply_ok(d, "connect", {"a", "g0", "a"});
  d = apply_ok(d, "connect", {"y", "g0", "y"});
  EXPECT_TRUE(tool.validate(d).ok());
  auto sch = Schematic::parse(d.payload);
  ASSERT_TRUE(sch.ok());
  EXPECT_EQ(sch->primitives.size(), 1u);
}

TEST_F(SchematicToolTest, UsesListTracksInstances) {
  auto d = doc();
  d = apply_ok(d, "add-instance", {"u0", "child", "schematic"});
  ASSERT_EQ(d.uses.size(), 1u);
  EXPECT_EQ(d.uses[0].cell, "child");
  d = apply_ok(d, "add-instance", {"u1", "child", "schematic"});
  EXPECT_EQ(d.uses.size(), 1u);  // same master once
  d = apply_ok(d, "remove-instance", {"u0"});
  EXPECT_EQ(d.uses.size(), 1u);  // u1 still uses it
  d = apply_ok(d, "remove-instance", {"u1"});
  EXPECT_TRUE(d.uses.empty());
}

TEST_F(SchematicToolTest, ValidateChecksUsesSync) {
  auto d = doc();
  d = apply_ok(d, "add-instance", {"u0", "child", "schematic"});
  d.uses.clear();  // sabotage the envelope
  auto st = tool.validate(d);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, Errc::consistency_violation);
}

TEST_F(SchematicToolTest, CommandErrors) {
  auto d = doc();
  EXPECT_EQ(tool.apply(d, "add-port", {"p", "weird"}).code(), Errc::parse_error);
  EXPECT_EQ(tool.apply(d, "add-prim", {"g", "FROB"}).code(), Errc::invalid_argument);
  EXPECT_EQ(tool.apply(d, "connect", {"nope", "g", "a"}).code(), Errc::not_found);
  EXPECT_EQ(tool.apply(d, "frobnicate", {}).code(), Errc::not_found);
  EXPECT_EQ(tool.apply(d, "add-instance", {"u0", "alu", "schematic"}).code(),
            Errc::consistency_violation);  // self-instantiation
  d = apply_ok(d, "add-net", {"n"});
  EXPECT_EQ(tool.apply(d, "add-net", {"n"}).code(), Errc::already_exists);
  EXPECT_EQ(tool.apply(d, "remove-instance", {"ghost"}).code(), Errc::not_found);
  EXPECT_EQ(tool.apply(d, "disconnect", {"n", "g", "a"}).code(), Errc::not_found);
}

TEST_F(SchematicToolTest, RenameNetUpdatesConnections) {
  auto d = doc();
  d = apply_ok(d, "add-net", {"old"});
  d = apply_ok(d, "add-prim", {"g0", "BUF"});
  d = apply_ok(d, "connect", {"old", "g0", "a"});
  d = apply_ok(d, "rename-net", {"old", "new"});
  auto sch = Schematic::parse(d.payload);
  ASSERT_TRUE(sch.ok());
  EXPECT_TRUE(sch->has_net("new"));
  EXPECT_FALSE(sch->has_net("old"));
  EXPECT_EQ(*sch->net_of("g0", "a"), "new");
  // port nets cannot be renamed
  d = apply_ok(d, "add-port", {"p", "in"});
  EXPECT_EQ(tool.apply(d, "rename-net", {"p", "q"}).code(), Errc::consistency_violation);
}

}  // namespace
}  // namespace jfm::tools
