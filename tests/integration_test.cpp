// End-to-end integration of the hybrid JCF-FMCAD framework: the full
// paper scenario -- bootstrap, hierarchical design entry under flow
// control, simulation out of the JCF database, layout entry, derivation
// queries and consistency checks.

#include <gtest/gtest.h>

#include "jfm/coupling/hybrid.hpp"
#include "jfm/workload/generators.hpp"

namespace jfm {
namespace {

using coupling::HybridFramework;
using coupling::ToolCommand;

class HybridScenario : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(hybrid.bootstrap().ok());
    auto alice_r = hybrid.add_designer("alice");
    ASSERT_TRUE(alice_r.ok());
    alice = *alice_r;
    auto bob_r = hybrid.add_designer("bob");
    ASSERT_TRUE(bob_r.ok());
    bob = *bob_r;
    ASSERT_TRUE(hybrid.create_project("asic").ok());
  }

  // Enter a half adder: sum = a XOR b, carry = a AND b.
  std::vector<ToolCommand> half_adder_commands() {
    return {
        {"add-port", {"a", "in"}},
        {"add-port", {"b", "in"}},
        {"add-port", {"sum", "out"}},
        {"add-port", {"carry", "out"}},
        {"add-prim", {"x1", "XOR"}},
        {"add-prim", {"a1", "AND"}},
        {"connect", {"a", "x1", "a"}},
        {"connect", {"b", "x1", "b"}},
        {"connect", {"sum", "x1", "y"}},
        {"connect", {"a", "a1", "a"}},
        {"connect", {"b", "a1", "b"}},
        {"connect", {"carry", "a1", "y"}},
    };
  }

  HybridFramework hybrid;
  jcf::UserRef alice;
  jcf::UserRef bob;
};

TEST_F(HybridScenario, FullFlowProducesSimulationResultsAndDerivations) {
  ASSERT_TRUE(hybrid.create_cell("asic", "halfadder", alice).ok());
  ASSERT_TRUE(hybrid.reserve_cell("asic", "halfadder", alice).ok());

  // 1. schematic entry (first activity of the prescribed flow)
  auto sch_run =
      hybrid.run_activity("asic", "halfadder", "enter_schematic", alice, half_adder_commands());
  ASSERT_TRUE(sch_run.ok()) << sch_run.error().to_text();
  EXPECT_GT(sch_run->fmcad_version, 0);
  EXPECT_TRUE(sch_run->output.valid());

  // 2. simulate: stimulate a=1 b=1, expect sum=0 carry=1
  std::vector<ToolCommand> sim_edits = {
      {"set-dut", {"halfadder", "schematic"}},
      {"add-stim", {"1", "a", "1"}},
      {"add-stim", {"1", "b", "1"}},
      {"add-watch", {"sum"}},
      {"add-watch", {"carry"}},
      {"set-runtime", {"50"}},
      {"run", {}},
  };
  auto sim_run = hybrid.run_activity("asic", "halfadder", "simulate", alice, sim_edits);
  ASSERT_TRUE(sim_run.ok()) << sim_run.error().to_text();

  // inspect the simulation results stored in OMS
  auto tb_text = hybrid.open_read_only("asic", "halfadder", "simulate", alice);
  ASSERT_TRUE(tb_text.ok());
  auto file = fmcad::DesignFile::parse(*tb_text);
  ASSERT_TRUE(file.ok());
  auto tb = tools::Testbench::parse(file->payload);
  ASSERT_TRUE(tb.ok());
  ASSERT_TRUE(tb->has_results);
  ASSERT_EQ(tb->results.size(), 2u);
  EXPECT_EQ(tb->results[0].first, "sum");
  EXPECT_EQ(tools::to_char(tb->results[0].second), '0');
  EXPECT_EQ(tb->results[1].first, "carry");
  EXPECT_EQ(tools::to_char(tb->results[1].second), '1');

  // 3. layout entry (final activity)
  std::vector<ToolCommand> lay_edits = {
      {"add-layer", {"metal1"}},
      {"draw-rect", {"metal1", "0", "0", "100", "20", "a"}},
      {"draw-rect", {"metal1", "0", "40", "100", "60", "b"}},
  };
  auto lay_run = hybrid.run_activity("asic", "halfadder", "enter_layout", alice, lay_edits);
  ASSERT_TRUE(lay_run.ok()) << lay_run.error().to_text();

  // 4. derivation relations recorded by JCF (s3.5): simulate and layout
  //    outputs both derive from the schematic version
  auto rows = hybrid.derivation_report("asic", "halfadder");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], "layout v1 <- schematic v1");
  EXPECT_EQ((*rows)[1], "simulate v1 <- schematic v1");

  // 5. publish and verify project consistency
  ASSERT_TRUE(hybrid.publish_cell("asic", "halfadder", alice).ok());
  auto problems = hybrid.check_consistency("asic");
  ASSERT_TRUE(problems.ok());
  EXPECT_TRUE(problems->empty());
}

TEST_F(HybridScenario, FlowOrderIsEnforcedAndForceShowsConsistencyWindow) {
  ASSERT_TRUE(hybrid.create_cell("asic", "blk", alice).ok());
  ASSERT_TRUE(hybrid.reserve_cell("asic", "blk", alice).ok());

  // layout before schematic/simulate violates the flow
  auto bad = hybrid.run_activity("asic", "blk", "enter_layout", alice,
                                 {{"add-layer", {"metal1"}}});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, support::Errc::flow_violation);

  // schematic first...
  ASSERT_TRUE(
      hybrid.run_activity("asic", "blk", "enter_schematic", alice, half_adder_commands()).ok());
  // ...then layout with force: allowed, but a consistency window appears
  auto forced = hybrid.run_activity("asic", "blk", "enter_layout", alice,
                                    {{"add-layer", {"metal1"}}}, /*force=*/true);
  ASSERT_TRUE(forced.ok()) << forced.error().to_text();
  ASSERT_FALSE(forced->consistency_windows.empty());
  EXPECT_NE(forced->consistency_windows[0].find("predecessor"), std::string::npos);
}

TEST_F(HybridScenario, WorkspaceIsolationBetweenDesigners) {
  ASSERT_TRUE(hybrid.create_cell("asic", "shared", alice).ok());
  ASSERT_TRUE(hybrid.reserve_cell("asic", "shared", alice).ok());
  // bob cannot reserve or run activities on alice's workspace
  auto st = hybrid.reserve_cell("asic", "shared", bob);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, support::Errc::locked);
  auto run = hybrid.run_activity("asic", "shared", "enter_schematic", bob,
                                 half_adder_commands());
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.error().code, support::Errc::permission_denied);
}

TEST_F(HybridScenario, HierarchicalDesignBuildsAndSimulates) {
  workload::HierarchySpec spec;
  spec.depth = 2;
  spec.fanout = 2;
  spec.leaf_gates = 3;
  auto top = workload::build_hierarchical_design(hybrid, "asic", spec, alice);
  ASSERT_TRUE(top.ok()) << top.error().to_text();
  EXPECT_EQ(*top, "top");

  // 7 cells were created (1 + 2 + 4)
  EXPECT_EQ(workload::hierarchy_cell_names(spec).size(), 7u);

  // the manual desktop steps were counted
  EXPECT_EQ(hybrid.hierarchy().stats().desktop_steps, 6u);

  // simulate the hierarchical top out of the JCF database
  ASSERT_TRUE(hybrid.reserve_cell("asic", "top", alice).ok());
  std::vector<ToolCommand> sim_edits = {
      {"set-dut", {"top", "schematic"}},   {"add-stim", {"1", "a", "1"}},
      {"add-stim", {"1", "b", "0"}},       {"add-watch", {"y"}},
      {"set-runtime", {"200"}},            {"run", {}},
  };
  auto run = hybrid.run_activity("asic", "top", "simulate", alice, sim_edits);
  ASSERT_TRUE(run.ok()) << run.error().to_text();
}

TEST_F(HybridScenario, UndeclaredHierarchyChildIsVetoedInManualMode) {
  ASSERT_TRUE(hybrid.create_cell("asic", "leafcell", alice).ok());
  ASSERT_TRUE(hybrid.create_cell("asic", "parent", alice).ok());
  ASSERT_TRUE(hybrid.reserve_cell("asic", "parent", alice).ok());
  // no declare_child("parent","leafcell") -- the menu guard must veto
  std::vector<ToolCommand> edits = {
      {"add-port", {"a", "in"}},
      {"add-port", {"b", "in"}},
      {"add-port", {"y", "out"}},
      {"add-instance", {"u0", "leafcell", "schematic"}},
  };
  auto run = hybrid.run_activity("asic", "parent", "enter_schematic", alice, edits);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.error().code, support::Errc::permission_denied);
  ASSERT_FALSE(hybrid.consistency_log().empty());
  EXPECT_NE(hybrid.consistency_log().back().find("declare the child"), std::string::npos);
}

TEST_F(HybridScenario, VariantExplorationSelectsTheOptimalSolution) {
  // Paper s2.1: variants inside one cell version store alternative
  // solutions of the same flow; the designer picks the best one.
  ASSERT_TRUE(hybrid.create_cell("asic", "mux", alice).ok());
  ASSERT_TRUE(hybrid.reserve_cell("asic", "mux", alice).ok());
  ASSERT_TRUE(hybrid.create_variant("asic", "mux", "opt_fast", alice).ok());
  ASSERT_TRUE(hybrid.create_variant("asic", "mux", "opt_small", alice).ok());
  // same name twice is refused
  EXPECT_EQ(hybrid.create_variant("asic", "mux", "opt_fast", alice).code(),
            support::Errc::already_exists);

  // alternative 1: two gates; alternative 2: one gate
  std::vector<ToolCommand> fast = {
      {"add-port", {"a", "in"}},   {"add-port", {"y", "out"}},  {"add-net", {"m"}},
      {"add-prim", {"g0", "NOT"}}, {"add-prim", {"g1", "NOT"}},
      {"connect", {"a", "g0", "a"}}, {"connect", {"m", "g0", "y"}},
      {"connect", {"m", "g1", "a"}}, {"connect", {"y", "g1", "y"}},
  };
  std::vector<ToolCommand> small = {
      {"add-port", {"a", "in"}},  {"add-port", {"y", "out"}},
      {"add-prim", {"g0", "BUF"}},
      {"connect", {"a", "g0", "a"}}, {"connect", {"y", "g0", "y"}},
  };
  auto run_fast =
      hybrid.run_activity_in_variant("asic", "mux", "opt_fast", "enter_schematic", alice, fast);
  ASSERT_TRUE(run_fast.ok()) << run_fast.error().to_text();
  auto run_small = hybrid.run_activity_in_variant("asic", "mux", "opt_small", "enter_schematic",
                                                  alice, small);
  ASSERT_TRUE(run_small.ok()) << run_small.error().to_text();

  // each variant carries its own design objects and flow progress
  auto& jcf = hybrid.jcf();
  auto project = *jcf.find_project("asic");
  auto cell = *jcf.find_cell(project, "mux");
  auto cv = *jcf.latest_cell_version(cell);
  auto v_fast = *jcf.find_variant(cv, "opt_fast");
  auto v_small = *jcf.find_variant(cv, "opt_small");
  auto enter = *jcf.find_activity("enter_schematic");
  EXPECT_EQ(*jcf.activity_progress(v_fast, enter), jcf::ActivityProgress::done);
  EXPECT_EQ(*jcf.activity_progress(v_small, enter), jcf::ActivityProgress::done);
  auto d_fast = *jcf.find_design_object(v_fast, "schematic");
  auto d_small = *jcf.find_design_object(v_small, "schematic");
  auto data_fast = *jcf.dov_data(*jcf.latest_dov(d_fast), alice);
  auto data_small = *jcf.dov_data(*jcf.latest_dov(d_small), alice);
  EXPECT_NE(data_fast, data_small);

  // select the winner: freeze it in a configuration
  auto golden = *jcf.create_config(cv, "selected");
  ASSERT_TRUE(jcf.add_config_member(golden, *jcf.latest_dov(d_small)).ok());
  EXPECT_EQ(jcf.config_members(golden)->size(), 1u);
  ASSERT_TRUE(hybrid.publish_cell("asic", "mux", alice).ok());
}

TEST_F(HybridScenario, MissingVariantReported) {
  ASSERT_TRUE(hybrid.create_cell("asic", "c", alice).ok());
  ASSERT_TRUE(hybrid.reserve_cell("asic", "c", alice).ok());
  auto run = hybrid.run_activity_in_variant("asic", "c", "nosuch_variant", "enter_schematic",
                                            alice, {});
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.error().code, support::Errc::not_found);
  // creating a variant requires the reservation
  EXPECT_EQ(hybrid.create_variant("asic", "c", "v", bob).code(),
            support::Errc::permission_denied);
}

TEST_F(HybridScenario, ReadOnlyAccessStillCopiesData) {
  ASSERT_TRUE(hybrid.create_cell("asic", "blk", alice).ok());
  ASSERT_TRUE(hybrid.reserve_cell("asic", "blk", alice).ok());
  ASSERT_TRUE(
      hybrid.run_activity("asic", "blk", "enter_schematic", alice, half_adder_commands()).ok());

  const auto before = hybrid.transfer().stats_snapshot();
  auto content = hybrid.open_read_only("asic", "blk", "schematic", alice);
  ASSERT_TRUE(content.ok());
  const auto after = hybrid.transfer().stats_snapshot();
  EXPECT_EQ(after.exports, before.exports + 1);
  EXPECT_GT(after.bytes_exported, before.bytes_exported);
  // staging doubles the movement in copy-through-filesystem mode
  EXPECT_EQ(after.staging_copies, before.staging_copies + 1);
}

}  // namespace
}  // namespace jfm
