// ITC bus, tool registry, ToolSession menus / triggers / cross-probing
// (paper s2.2: inter-tool communication; s2.4: trigger functions and
// locked menu points).

#include <gtest/gtest.h>

#include "jfm/fmcad/tool.hpp"
#include "jfm/tools/schematic_tool.hpp"

namespace jfm::fmcad {
namespace {

using support::Errc;

TEST(ItcBus, DeliversToTopicSubscribersInOrder) {
  ItcBus bus;
  std::vector<std::string> seen;
  bus.subscribe("t", [&](const ItcMessage& m) { seen.push_back("a:" + m.fields.at("x")); });
  bus.subscribe("t", [&](const ItcMessage& m) { seen.push_back("b:" + m.fields.at("x")); });
  bus.subscribe("other", [&](const ItcMessage&) { seen.push_back("other"); });
  ItcMessage msg;
  msg.topic = "t";
  msg.sender = "test";
  msg.fields["x"] = "1";
  EXPECT_EQ(bus.publish(msg), 2u);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "a:1");
  EXPECT_EQ(seen[1], "b:1");
  EXPECT_EQ(bus.history().size(), 1u);
}

TEST(ItcBus, UnsubscribeStopsDelivery) {
  ItcBus bus;
  int hits = 0;
  auto id = bus.subscribe("t", [&](const ItcMessage&) { ++hits; });
  ItcMessage msg;
  msg.topic = "t";
  bus.publish(msg);
  bus.unsubscribe(id);
  bus.publish(msg);
  EXPECT_EQ(hits, 1);
}

TEST(ToolRegistry, OneToolPerViewtype) {
  ToolRegistry registry;
  ASSERT_TRUE(registry.add(std::make_shared<tools::SchematicTool>()).ok());
  EXPECT_EQ(registry.add(std::make_shared<tools::SchematicTool>()).code(),
            Errc::already_exists);
  EXPECT_NE(registry.by_viewtype("schematic"), nullptr);
  EXPECT_NE(registry.by_name("schematic_entry"), nullptr);
  EXPECT_EQ(registry.by_viewtype("nope"), nullptr);
  EXPECT_EQ(registry.names().size(), 1u);
}

class ToolSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(fs.mkdirs(vfs::Path().child("libs")).ok());
    auto lib = Library::create(&fs, &clock, vfs::Path().child("libs"), "work");
    ASSERT_TRUE(lib.ok());
    library = *lib;
    alice = std::make_unique<DesignerSession>(library, "alice");
    ASSERT_TRUE(alice->define_view("schematic", "schematic").ok());
    ASSERT_TRUE(alice->create_cell("alu").ok());
    ASSERT_TRUE(alice->create_cellview({"alu", "schematic"}).ok());
  }

  support::SimClock clock;
  vfs::FileSystem fs{&clock};
  std::shared_ptr<Library> library;
  std::unique_ptr<DesignerSession> alice;
  tools::SchematicTool tool;
  ItcBus bus;
  extlang::Interpreter interp;
};

TEST_F(ToolSessionTest, OpenEditSaveCheckin) {
  ToolSession session(alice.get(), &tool, &bus, &interp);
  ASSERT_TRUE(session.open({"alu", "schematic"}, false).ok());
  EXPECT_TRUE(session.is_open());
  ASSERT_TRUE(session.edit("add-port", {"a", "in"}).ok());
  ASSERT_TRUE(session.edit("add-port", {"y", "out"}).ok());
  ASSERT_TRUE(session.edit("add-prim", {"g0", "BUF"}).ok());
  ASSERT_TRUE(session.edit("connect", {"a", "g0", "a"}).ok());
  ASSERT_TRUE(session.edit("connect", {"y", "g0", "y"}).ok());
  auto version = session.checkin();
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 1);
  EXPECT_FALSE(session.is_open());
  // the stored file parses back
  auto text = alice->read_default({"alu", "schematic"});
  ASSERT_TRUE(text.ok());
  auto file = DesignFile::parse(*text);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->viewtype, "schematic");
}

TEST_F(ToolSessionTest, SaveVetoedWhenToolRejectsDocument) {
  ToolSession session(alice.get(), &tool, &bus, &interp);
  ASSERT_TRUE(session.open({"alu", "schematic"}, false).ok());
  // a port without its net is structurally impossible through the tool;
  // simulate a raw pre-save trigger veto instead
  interp.define_builtin("deny", [](extlang::Interpreter&,
                                   extlang::ValueList&) -> support::Result<extlang::Value> {
    return extlang::Value(false);
  });
  interp.add_trigger("pre-save", *interp.global("deny"));
  auto st = session.save();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, Errc::permission_denied);
  ASSERT_TRUE(session.discard().ok());
}

TEST_F(ToolSessionTest, ReadOnlyOpenCannotEditOrSave) {
  {
    ToolSession writer(alice.get(), &tool, &bus, &interp);
    ASSERT_TRUE(writer.open({"alu", "schematic"}, false).ok());
    ASSERT_TRUE(writer.checkin().ok());
  }
  ToolSession session(alice.get(), &tool, &bus, &interp);
  ASSERT_TRUE(session.open({"alu", "schematic"}, true).ok());
  EXPECT_EQ(session.edit("add-net", {"n"}).code(), Errc::permission_denied);
  EXPECT_EQ(session.save().code(), Errc::permission_denied);
  ASSERT_TRUE(session.discard().ok());
  // read-only open holds no checkout
  EXPECT_FALSE(library->meta().find_cellview({"alu", "schematic"})->checkout.has_value());
}

TEST_F(ToolSessionTest, MenuLockingBlocksInvocation) {
  ToolSession session(alice.get(), &tool, &bus, &interp);
  ASSERT_TRUE(session.open({"alu", "schematic"}, false).ok());
  ASSERT_TRUE(session.set_menu_enabled("Hierarchy", "Add Instance", false).ok());
  auto st = session.invoke_menu("Hierarchy", "Add Instance", {"u0", "rom", "schematic"});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, Errc::permission_denied);
  EXPECT_NE(st.error().message.find("locked"), std::string::npos);
  EXPECT_EQ(session.menu_item_count(false) - session.menu_item_count(true), 1u);
  // unknown menu points
  EXPECT_EQ(session.invoke_menu("Nope", "X", {}).code(), Errc::not_found);
  EXPECT_EQ(session.invoke_menu("Hierarchy", "Nope", {}).code(), Errc::not_found);
  EXPECT_EQ(session.set_menu_enabled("Hierarchy", "Nope", true).code(), Errc::not_found);
}

TEST_F(ToolSessionTest, MenuTriggerCanVeto) {
  ToolSession session(alice.get(), &tool, &bus, &interp);
  ASSERT_TRUE(session.open({"alu", "schematic"}, false).ok());
  ASSERT_TRUE(interp
                  .eval_text("(define (guard menu cmd) (if (= cmd \"add-net\") #f #t))")
                  .ok());
  // arity: menu trigger receives (menu command args...) -- use a builtin
  interp.define_builtin("g2", [](extlang::Interpreter&,
                                 extlang::ValueList& args) -> support::Result<extlang::Value> {
    return extlang::Value(!(args.size() >= 2 && args[1].is_string() &&
                            args[1].as_string() == "add-net"));
  });
  interp.add_trigger("menu", *interp.global("g2"));
  EXPECT_EQ(session.invoke_menu("Edit", "add-net", {"n1"}).code(), Errc::permission_denied);
  EXPECT_TRUE(session.invoke_menu("Edit", "add-prim", {"g0", "BUF"}).ok());
}

TEST_F(ToolSessionTest, CrossProbeHighlightsOtherSessions) {
  // prepare content so both sessions can open (one writer, one reader)
  {
    ToolSession writer(alice.get(), &tool, &bus, &interp);
    ASSERT_TRUE(writer.open({"alu", "schematic"}, false).ok());
    ASSERT_TRUE(writer.edit("add-net", {"n1"}).ok());
    ASSERT_TRUE(writer.checkin().ok());
  }
  DesignerSession bob_session(library, "bob");
  ToolSession editor(alice.get(), &tool, &bus, &interp);
  ASSERT_TRUE(editor.open({"alu", "schematic"}, false).ok());
  ToolSession viewer(&bob_session, &tool, &bus, &interp);
  ASSERT_TRUE(viewer.open({"alu", "schematic"}, true).ok());

  EXPECT_EQ(editor.probe("n1"), 2u);  // both sessions subscribe to the cell topic
  ASSERT_EQ(viewer.highlights().size(), 1u);
  EXPECT_EQ(viewer.highlights()[0], "n1");
  EXPECT_TRUE(editor.highlights().empty());  // own probes are not echoed
}

TEST_F(ToolSessionTest, ViewtypeSwitchedToolEditsOtherViews) {
  // s2.2: "viewtypes ... easily switched with the same tool" -- the
  // schematic engine doubles as a symbol editor under viewtype "symbol"
  ToolRegistry registry;
  ASSERT_TRUE(registry.add(std::make_shared<tools::SchematicTool>()).ok());
  ASSERT_TRUE(
      registry.add(std::make_shared<tools::SchematicTool>("symbol", "symbol_editor")).ok());
  ASSERT_TRUE(alice->define_view("symbol", "symbol").ok());
  ASSERT_TRUE(alice->create_cellview({"alu", "symbol"}).ok());
  ToolInterface* symbol_tool = registry.by_viewtype("symbol");
  ASSERT_NE(symbol_tool, nullptr);
  EXPECT_EQ(symbol_tool->name(), "symbol_editor");
  ToolSession session(alice.get(), symbol_tool, &bus, &interp);
  ASSERT_TRUE(session.open({"alu", "symbol"}, false).ok());
  ASSERT_TRUE(session.edit("add-net", {"pinstub"}).ok());
  auto version = session.checkin();
  ASSERT_TRUE(version.ok());
  auto text = alice->read_default({"alu", "symbol"});
  ASSERT_TRUE(text.ok());
  auto file = DesignFile::parse(*text);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->viewtype, "symbol");
}

TEST_F(ToolSessionTest, DestructorReleasesCheckout) {
  {
    ToolSession session(alice.get(), &tool, &bus, &interp);
    ASSERT_TRUE(session.open({"alu", "schematic"}, false).ok());
    EXPECT_TRUE(library->meta().find_cellview({"alu", "schematic"})->checkout.has_value());
  }
  EXPECT_FALSE(library->meta().find_cellview({"alu", "schematic"})->checkout.has_value());
}

TEST_F(ToolSessionTest, ViewtypeMismatchRefused) {
  ASSERT_TRUE(alice->define_view("layout", "layout").ok());
  ASSERT_TRUE(alice->create_cellview({"alu", "layout"}).ok());
  ToolSession session(alice.get(), &tool, &bus, &interp);
  auto st = session.open({"alu", "layout"}, false);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, Errc::invalid_argument);
}

}  // namespace
}  // namespace jfm::fmcad
