// The event-driven simulator kernel: scheduling, propagation delays,
// DFF edge behaviour, traces and determinism.

#include <gtest/gtest.h>

#include "jfm/tools/simulator.hpp"

namespace jfm::tools {
namespace {

using support::Errc;

Circuit inverter_chain(int stages) {
  Circuit c;
  int in = c.add_signal("in");
  int prev = in;
  for (int i = 0; i < stages; ++i) {
    int out = c.add_signal("s" + std::to_string(i));
    c.gates.push_back({"NOT", {prev}, out, 1});
    prev = out;
  }
  return c;
}

TEST(Circuit, SignalManagement) {
  Circuit c;
  int a = c.add_signal("a");
  EXPECT_EQ(c.add_signal("a"), a);  // idempotent
  EXPECT_EQ(c.find_signal("a"), a);
  EXPECT_EQ(c.find_signal("zz"), -1);
  EXPECT_EQ(c.signal_count(), 1u);
}

TEST(Circuit, UndrivenSignalsAndSingleDriver) {
  Circuit c = inverter_chain(2);
  auto undriven = c.undriven_signals();
  ASSERT_EQ(undriven.size(), 1u);
  EXPECT_EQ(c.signal_names[static_cast<std::size_t>(undriven[0])], "in");
  EXPECT_TRUE(c.check_single_driver().ok());
  // add a second driver onto s0
  c.gates.push_back({"BUF", {c.find_signal("in")}, c.find_signal("s0"), 1});
  EXPECT_EQ(c.check_single_driver().code(), Errc::consistency_violation);
}

TEST(Simulator, CombinationalPropagationWithDelay) {
  Simulator sim(inverter_chain(3));
  ASSERT_TRUE(sim.inject(0, "in", Logic::L0).ok());
  ASSERT_TRUE(sim.run(100).ok());
  // in=0 -> s0=1 at t1 -> s1=0 at t2 -> s2=1 at t3
  EXPECT_EQ(*sim.value("s0"), Logic::L1);
  EXPECT_EQ(*sim.value("s1"), Logic::L0);
  EXPECT_EQ(*sim.value("s2"), Logic::L1);
  EXPECT_EQ(sim.stats().last_event_time, 3u);
}

TEST(Simulator, RunStopsAtDeadline) {
  Simulator sim(inverter_chain(10));
  ASSERT_TRUE(sim.inject(0, "in", Logic::L1).ok());
  ASSERT_TRUE(sim.run(4).ok());
  // only 4 stages settled; later stages still X
  EXPECT_EQ(*sim.value("s3"), Logic::L1);
  EXPECT_EQ(*sim.value("s5"), Logic::X);
}

TEST(Simulator, InjectValidation) {
  Simulator sim(inverter_chain(1));
  EXPECT_EQ(sim.inject(0, "ghost", Logic::L0).code(), Errc::not_found);
  EXPECT_EQ(sim.inject(0, 99, Logic::L0).code(), Errc::not_found);
  ASSERT_TRUE(sim.inject(5, "in", Logic::L1).ok());
  ASSERT_TRUE(sim.run(10).ok());
  EXPECT_EQ(sim.inject(2, "in", Logic::L0).code(), Errc::invalid_argument);  // past
}

TEST(Simulator, TraceRecordsTransitionsInOrder) {
  Simulator sim(inverter_chain(1));
  ASSERT_TRUE(sim.inject(0, "in", Logic::L0).ok());
  ASSERT_TRUE(sim.inject(10, "in", Logic::L1).ok());
  ASSERT_TRUE(sim.run(100).ok());
  const auto& trace = sim.trace();
  ASSERT_EQ(trace.size(), 4u);  // in:0, s0:1, in:1, s0:0
  EXPECT_EQ(trace[0].time, 0u);
  EXPECT_EQ(trace[1].time, 1u);
  EXPECT_EQ(trace[2].time, 10u);
  EXPECT_EQ(trace[3].time, 11u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i - 1].time, trace[i].time);
  }
}

TEST(Simulator, RedundantEventsSuppressed) {
  Simulator sim(inverter_chain(1));
  ASSERT_TRUE(sim.inject(0, "in", Logic::L0).ok());
  ASSERT_TRUE(sim.inject(5, "in", Logic::L0).ok());  // no change
  ASSERT_TRUE(sim.run(100).ok());
  EXPECT_EQ(sim.trace().size(), 2u);  // in once, s0 once
}

TEST(Simulator, DffSamplesOnRisingEdgeOnly) {
  Circuit c;
  int d = c.add_signal("d");
  int clk = c.add_signal("clk");
  int q = c.add_signal("q");
  c.gates.push_back({"DFF", {d, clk}, q, 1});
  Simulator sim(std::move(c));
  ASSERT_TRUE(sim.inject(0, "clk", Logic::L0).ok());
  ASSERT_TRUE(sim.inject(0, "d", Logic::L1).ok());
  ASSERT_TRUE(sim.inject(10, "clk", Logic::L1).ok());  // rising: q <- 1
  ASSERT_TRUE(sim.inject(20, "d", Logic::L0).ok());    // no edge: q stays
  ASSERT_TRUE(sim.inject(30, "clk", Logic::L0).ok());  // falling: q stays
  ASSERT_TRUE(sim.run(50).ok());
  EXPECT_EQ(*sim.value("q"), Logic::L1);
  // next rising edge captures the new d
  ASSERT_TRUE(sim.inject(60, "clk", Logic::L1).ok());
  ASSERT_TRUE(sim.run(70).ok());
  EXPECT_EQ(*sim.value("q"), Logic::L0);
}

TEST(Simulator, DffIgnoresXToOneClockTransition) {
  Circuit c;
  int d = c.add_signal("d");
  int clk = c.add_signal("clk");
  int q = c.add_signal("q");
  c.gates.push_back({"DFF", {d, clk}, q, 1});
  Simulator sim(std::move(c));
  ASSERT_TRUE(sim.inject(0, "d", Logic::L1).ok());
  ASSERT_TRUE(sim.inject(5, "clk", Logic::L1).ok());  // X -> 1 is not a clean edge
  ASSERT_TRUE(sim.run(20).ok());
  EXPECT_EQ(*sim.value("q"), Logic::X);
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulator sim(inverter_chain(8));
    (void)sim.inject(0, "in", Logic::L0);
    (void)sim.inject(7, "in", Logic::L1);
    (void)sim.inject(13, "in", Logic::L0);
    (void)sim.run(1000);
    std::string out;
    for (const auto& change : sim.trace()) {
      out += std::to_string(change.time) + ":" + std::to_string(change.signal) +
             to_char(change.value) + ";";
    }
    return out;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Simulator, OscillatorHitsEventLimit) {
  // a NOT gate feeding itself oscillates forever
  Circuit c;
  int s = c.add_signal("s");
  c.gates.push_back({"NOT", {s}, s, 1});
  Simulator sim(std::move(c));
  ASSERT_TRUE(sim.inject(0, "s", Logic::L0).ok());
  auto result = sim.run(std::numeric_limits<SimTime>::max());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::internal);
}

TEST(Simulator, GlitchPropagation) {
  // two paths of different delay into an XOR create a transient pulse
  Circuit c;
  int in = c.add_signal("in");
  int slow = c.add_signal("slow");
  int out = c.add_signal("out");
  c.gates.push_back({"BUF", {in}, slow, 3});
  c.gates.push_back({"XOR", {in, slow}, out, 1});
  Simulator sim(std::move(c));
  ASSERT_TRUE(sim.inject(0, "in", Logic::L0).ok());
  ASSERT_TRUE(sim.run(10).ok());
  ASSERT_TRUE(sim.inject(20, "in", Logic::L1).ok());
  ASSERT_TRUE(sim.run(100).ok());
  // the glitch: out went 1 (in changed) then back 0 (slow caught up)
  int pulses = 0;
  for (const auto& change : sim.trace()) {
    if (change.signal == 2 && change.value == Logic::L1) ++pulses;
  }
  EXPECT_EQ(pulses, 1);
  EXPECT_EQ(*sim.value("out"), Logic::L0);
}

}  // namespace
}  // namespace jfm::tools
