// Library lifecycle: directory + .meta on the virtual UNIX file system,
// the Figure-2 object set, and configurations.

#include <gtest/gtest.h>

#include "jfm/fmcad/session.hpp"

namespace jfm::fmcad {
namespace {

using support::Errc;

class LibraryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(fs.mkdirs(libs()).ok());
    auto lib = Library::create(&fs, &clock, libs(), "work");
    ASSERT_TRUE(lib.ok());
    library = *lib;
  }
  vfs::Path libs() { return vfs::Path().child("libs"); }

  support::SimClock clock;
  vfs::FileSystem fs{&clock};
  std::shared_ptr<Library> library;
};

TEST_F(LibraryTest, CreateWritesDirectoryAndMeta) {
  EXPECT_TRUE(fs.is_directory(*vfs::Path::parse("/libs/work")));
  EXPECT_TRUE(fs.exists(*vfs::Path::parse("/libs/work/.meta")));
  EXPECT_EQ(library->name(), "work");
  EXPECT_EQ(Library::create(&fs, &clock, libs(), "work").code(), Errc::already_exists);
  EXPECT_EQ(Library::create(&fs, &clock, libs(), "bad name").code(), Errc::invalid_argument);
}

TEST_F(LibraryTest, OpenReadsExistingMeta) {
  ASSERT_TRUE(library->define_view("schematic", "schematic").ok());
  ASSERT_TRUE(library->create_cell("alu").ok());
  auto reopened = Library::open(&fs, &clock, *vfs::Path::parse("/libs/work"));
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->meta().has_cell("alu"));
  EXPECT_EQ((*reopened)->generation(), library->generation());
  EXPECT_EQ(Library::open(&fs, &clock, *vfs::Path::parse("/libs/none")).code(),
            Errc::not_found);
}

TEST_F(LibraryTest, EveryCommitBumpsGenerationAndRewritesMeta) {
  auto g0 = library->generation();
  auto meta_before = fs.stat(*vfs::Path::parse("/libs/work/.meta"))->mtime;
  ASSERT_TRUE(library->create_cell("alu").ok());
  EXPECT_EQ(library->generation(), g0 + 1);
  EXPECT_GT(fs.stat(*vfs::Path::parse("/libs/work/.meta"))->mtime, meta_before);
}

TEST_F(LibraryTest, CellViewRequiresCellAndView) {
  EXPECT_EQ(library->create_cellview({"alu", "schematic"}).code(), Errc::not_found);
  ASSERT_TRUE(library->create_cell("alu").ok());
  EXPECT_EQ(library->create_cellview({"alu", "schematic"}).code(), Errc::not_found);
  ASSERT_TRUE(library->define_view("schematic", "schematic").ok());
  EXPECT_TRUE(library->create_cellview({"alu", "schematic"}).ok());
  EXPECT_EQ(library->create_cellview({"alu", "schematic"}).code(), Errc::already_exists);
  EXPECT_TRUE(fs.is_directory(*vfs::Path::parse("/libs/work/alu/schematic")));
}

TEST_F(LibraryTest, DuplicateNamesRejected) {
  ASSERT_TRUE(library->create_cell("alu").ok());
  EXPECT_EQ(library->create_cell("alu").code(), Errc::already_exists);
  ASSERT_TRUE(library->define_view("v", "t").ok());
  EXPECT_EQ(library->define_view("v", "t2").code(), Errc::already_exists);
  ASSERT_TRUE(library->create_config("cfg").ok());
  EXPECT_EQ(library->create_config("cfg").code(), Errc::already_exists);
}

TEST_F(LibraryTest, ConfigHoldsAtMostOneVersionPerCellview) {
  ASSERT_TRUE(library->define_view("schematic", "schematic").ok());
  ASSERT_TRUE(library->create_cell("alu").ok());
  CellViewKey key{"alu", "schematic"};
  ASSERT_TRUE(library->create_cellview(key).ok());
  // make two versions
  for (int i = 0; i < 2; ++i) {
    auto work = library->checkout(key, "u");
    ASSERT_TRUE(work.ok());
    ASSERT_TRUE(fs.write_file(*work, "content " + std::to_string(i)).ok());
    ASSERT_TRUE(library->checkin(key, "u").ok());
  }
  ASSERT_TRUE(library->create_config("cfg").ok());
  EXPECT_EQ(library->set_config_member("cfg", key, 9).code(), Errc::not_found);
  ASSERT_TRUE(library->set_config_member("cfg", key, 1).ok());
  // replacing the version keeps a single entry
  ASSERT_TRUE(library->set_config_member("cfg", key, 2).ok());
  EXPECT_EQ(library->meta().find_config("cfg")->members.size(), 1u);
  EXPECT_EQ(library->meta().find_config("cfg")->members.at(key), 2);
  ASSERT_TRUE(library->remove_config_member("cfg", key).ok());
  EXPECT_EQ(library->remove_config_member("cfg", key).code(), Errc::not_found);
}

TEST_F(LibraryTest, FullStateSurvivesReopen) {
  // Everything the .meta records -- versions, configs, live checkouts --
  // must survive closing and reopening the library (a new tool session
  // finding the directory on disk).
  ASSERT_TRUE(library->define_view("schematic", "schematic").ok());
  ASSERT_TRUE(library->create_cell("alu").ok());
  CellViewKey key{"alu", "schematic"};
  ASSERT_TRUE(library->create_cellview(key).ok());
  auto work = library->checkout(key, "anna");
  ASSERT_TRUE(work.ok());
  ASSERT_TRUE(fs.write_file(*work, "v1 content").ok());
  ASSERT_TRUE(library->checkin(key, "anna").ok());
  ASSERT_TRUE(library->create_config("golden").ok());
  ASSERT_TRUE(library->set_config_member("golden", key, 1).ok());
  // leave a live checkout behind
  ASSERT_TRUE(library->checkout(key, "ben").ok());

  auto reopened = Library::open(&fs, &clock, *vfs::Path::parse("/libs/work"));
  ASSERT_TRUE(reopened.ok());
  DesignerSession carol(*reopened, "carol");
  // the stored version reads back
  auto content = carol.read_version(key, 1);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "v1 content");
  // the config survived
  EXPECT_EQ(carol.view().find_config("golden")->members.at(key), 1);
  // ben's checkout still holds: carol is locked out
  auto denied = carol.checkout(key);
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.error().code, support::Errc::locked);
  // ben can finish through the reopened library
  DesignerSession ben(*reopened, "ben");
  ASSERT_TRUE(ben.write_working(key, "v2 content").ok());
  auto version = ben.checkin(key);
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 2);
}

TEST_F(LibraryTest, DesignBytesExcludesMeta) {
  ASSERT_TRUE(library->define_view("schematic", "schematic").ok());
  ASSERT_TRUE(library->create_cell("alu").ok());
  CellViewKey key{"alu", "schematic"};
  ASSERT_TRUE(library->create_cellview(key).ok());
  auto work = library->checkout(key, "u");
  ASSERT_TRUE(work.ok());
  ASSERT_TRUE(fs.write_file(*work, std::string(500, 'x')).ok());
  ASSERT_TRUE(library->checkin(key, "u").ok());
  EXPECT_EQ(library->design_bytes(), 500u);
}

}  // namespace
}  // namespace jfm::fmcad
