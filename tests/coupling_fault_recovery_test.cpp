// Recovery invariants for the fault-tolerant checkout path
// (docs/fault-injection.md). The headline property: whatever faults a
// deterministic schedule injects, a checkout that eventually reports
// success leaves the destination BIT-IDENTICAL to a fault-free run,
// and a checkout that fails leaves the destination bit-identical to
// its pre-checkout state (rollback). Plus: retry absorption, explicit
// rollback, batch timeouts, replayability and a TSan storm.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "jfm/coupling/hybrid.hpp"
#include "jfm/oms/store.hpp"
#include "jfm/support/faultsim.hpp"
#include "test_seed.hpp"

namespace jfm::coupling {
namespace {

using support::Errc;
namespace faultsim = support::faultsim;

std::vector<ToolCommand> tiny_schematic() {
  return {
      {"add-port", {"a", "in"}},  {"add-port", {"y", "out"}},
      {"add-prim", {"g0", "NOT"}}, {"connect", {"a", "g0", "a"}},
      {"connect", {"y", "g0", "y"}},
  };
}

/// root-relative path -> content for every file under `root` (empty
/// map if absent). Relative keys make trees rooted at different
/// destinations directly comparable.
std::map<std::string, std::string> tree_contents(vfs::FileSystem& fs, const vfs::Path& root) {
  std::map<std::string, std::string> out;
  if (!fs.exists(root)) return out;
  auto files = fs.walk_files(root);
  if (!files.ok()) return out;
  const std::string prefix = root.str() + "/";
  for (const auto& file : *files) {
    auto content = fs.read_file(file);
    if (!content.ok()) continue;
    std::string key = file.str();
    if (key.rfind(prefix, 0) == 0) key.erase(0, prefix.size());
    out[key] = *content;
  }
  return out;
}

class FaultRecoveryTest : public ::testing::Test {
 protected:
  void TearDown() override { faultsim::Injector::global().disarm(); }

  /// A three-cell hierarchy (top -> {alu, regfile}) with populated
  /// schematics, built with the injector DISARMED so every world is
  /// identical before the experiment starts.
  void build_world(bool cache_on = true) {
    faultsim::Injector::global().disarm();
    HybridConfig config;
    config.content_addressed_cache = cache_on;
    hybrid = std::make_unique<HybridFramework>(config);
    ASSERT_TRUE(hybrid->bootstrap().ok());
    alice = *hybrid->add_designer("alice");
    ASSERT_TRUE(hybrid->create_project("p").ok());
    for (const char* cell : {"top", "alu", "regfile"}) {
      ASSERT_TRUE(hybrid->create_cell("p", cell, alice).ok());
      ASSERT_TRUE(hybrid->reserve_cell("p", cell, alice).ok());
      auto run = hybrid->run_activity("p", cell, "enter_schematic", alice, tiny_schematic());
      ASSERT_TRUE(run.ok()) << run.error().to_text();
    }
    ASSERT_TRUE(hybrid->declare_child("p", "top", "alu").ok());
    ASSERT_TRUE(hybrid->declare_child("p", "top", "regfile").ok());
  }

  void arm(const std::string& plan_text) {
    auto plan = faultsim::parse_plan(plan_text);
    ASSERT_TRUE(plan.ok()) << plan.error().to_text();
    faultsim::Injector::global().arm(std::move(*plan));
  }

  std::unique_ptr<HybridFramework> hybrid;
  jcf::UserRef alice;
};

// ---------------------------------------------------------------------------
// The headline property, parameterized over seeds: under fault rates
// 0%, 5% and 20% across every hook site on the export path, a
// recovering checkout converges to the exact fault-free tree.

class CheckoutRecoveryProperty : public FaultRecoveryTest,
                                 public ::testing::WithParamInterface<std::uint32_t> {};

TEST_P(CheckoutRecoveryProperty, RecoveredCheckoutIsBitIdenticalToFaultFreeRun) {
  const std::uint32_t seed = GetParam();
  for (double rate : {0.0, 0.05, 0.20}) {
    build_world();
    auto& fs = hybrid->fs();

    // Oracle: a fault-free checkout of the same hierarchy.
    auto oracle_dst = vfs::Path().child("scratch").child("oracle");
    auto oracle = hybrid->checkout_hierarchy("p", "top", alice, oracle_dst);
    ASSERT_TRUE(oracle.ok()) << oracle.error().to_text();
    ASSERT_TRUE(oracle->failures.empty());
    const auto want = tree_contents(fs, oracle_dst);
    ASSERT_EQ(want.size(), 3u);

    // Faulty run: every site on the export path draws from the same
    // deterministic schedule. Retry whole checkouts until one reports
    // clean success -- each failed attempt must have rolled back, so
    // every attempt starts from the pre-checkout state.
    const std::string rate_text = std::to_string(rate);
    arm("seed=" + std::to_string(seed) + ";transfer.export_item=" + rate_text +
        ";vfs.write=" + rate_text + ";vfs.copy=" + rate_text + ";vfs.read=" + rate_text);
    auto dst = vfs::Path().child("scratch").child("faulty");
    bool converged = false;
    for (int attempt = 0; attempt < 10 && !converged; ++attempt) {
      auto report = hybrid->checkout_hierarchy("p", "top", alice, dst);
      if (!report.ok()) continue;  // pre-mutation failure (journal capture)
      if (report->failures.empty()) {
        EXPECT_FALSE(report->rolled_back);
        converged = true;
      } else {
        // A failed checkout must restore the pre-state it journaled.
        EXPECT_TRUE(report->rolled_back);
      }
    }
    faultsim::Injector::global().disarm();
    ASSERT_TRUE(converged) << "seed " << seed << " rate " << rate;
    EXPECT_EQ(tree_contents(fs, dst), want) << "seed " << seed << " rate " << rate;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckoutRecoveryProperty,
                         ::testing::ValuesIn(jfm::testing::test_seeds(
                             "fault-recovery", {3u, 17u, 0xBEEFu, 0xFEEDFACEu})));

// ---------------------------------------------------------------------------
// Deterministic single-shot behaviours via explicit-ordinal schedules.

TEST_F(FaultRecoveryTest, RetriesAbsorbTransientExportFaults) {
  build_world();
  // Ordinals 1 and 2 of transfer.export_item fail; attempts 2/3 of the
  // affected items succeed. The checkout reports clean success, no
  // rollback, and the retry counter records the absorbed faults.
  arm("transfer.export_item@1,2");
  auto dst = vfs::Path().child("scratch").child("retry");
  auto report = hybrid->checkout_hierarchy("p", "top", alice, dst);
  ASSERT_TRUE(report.ok()) << report.error().to_text();
  EXPECT_TRUE(report->failures.empty());
  EXPECT_FALSE(report->rolled_back);
  EXPECT_EQ(report->exported, 3u);
  EXPECT_GE(report->retries, 2u);
  EXPECT_EQ(tree_contents(hybrid->fs(), dst).size(), 3u);
}

TEST_F(FaultRecoveryTest, ExhaustedRetriesRollBackToPreCheckoutState) {
  build_world();
  auto& fs = hybrid->fs();
  // Pre-existing content in the destination: one stale cellview file
  // (will be overwritten by a checkout) and one unrelated file (never a
  // checkout target). Rollback must restore the former and the
  // checkout must never touch the latter.
  auto dst = vfs::Path().child("scratch").child("rb");
  ASSERT_TRUE(fs.mkdirs(dst).ok());
  ASSERT_TRUE(fs.write_file(dst.child("top_schematic"), "stale pre-image").ok());
  ASSERT_TRUE(fs.write_file(dst.child("unrelated.txt"), "keep me").ok());
  const auto pre_state = tree_contents(fs, dst);

  // transfer.export_item fails every attempt: with max_attempts=4 and
  // 3 items, ordinals 1..12 cover every attempt of every item.
  arm("transfer.export_item@1,2,3,4,5,6,7,8,9,10,11,12");
  auto report = hybrid->checkout_hierarchy("p", "top", alice, dst);
  faultsim::Injector::global().disarm();
  ASSERT_TRUE(report.ok()) << report.error().to_text();
  EXPECT_EQ(report->failures.size(), 3u);
  EXPECT_TRUE(report->rolled_back);
  EXPECT_GE(report->restored, 3u);
  EXPECT_EQ(tree_contents(fs, dst), pre_state);

  // After disarming, the very next checkout succeeds and overwrites
  // the stale pre-image with real data.
  auto clean = hybrid->checkout_hierarchy("p", "top", alice, dst);
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(clean->failures.empty());
  auto fresh = fs.read_file(dst.child("top_schematic"));
  ASSERT_TRUE(fresh.ok());
  EXPECT_NE(*fresh, "stale pre-image");
  auto untouched = fs.read_file(dst.child("unrelated.txt"));
  ASSERT_TRUE(untouched.ok());
  EXPECT_EQ(*untouched, "keep me");
}

TEST_F(FaultRecoveryTest, FaultScheduleReplaysIdenticallyAcrossRuns) {
  // Same seed + same world => the same attempt-by-attempt outcome,
  // including which items needed retries.
  auto run_once = [this]() {
    build_world();
    arm("seed=99;transfer.export_item=0.5");
    auto dst = vfs::Path().child("scratch").child("replay");
    auto report = hybrid->checkout_hierarchy("p", "top", alice, dst);
    faultsim::Injector::global().disarm();
    EXPECT_TRUE(report.ok());
    auto failures = report.ok() ? report->failures : std::vector<std::string>{};
    return std::make_tuple(report.ok() ? report->retries : 0u,
                           report.ok() ? report->rolled_back : false, failures,
                           tree_contents(hybrid->fs(), dst));
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first, second);
}

TEST_F(FaultRecoveryTest, BatchDeadlineFailsLeftoverItemsWithTimeout) {
  build_world();
  // Every export attempt faults, so each item burns its full backoff
  // budget (50+100+200 us). A 1 us deadline expires before any work:
  // all items fail, at least one with Errc::timeout, and the checkout
  // rolls back.
  arm("transfer.export_item=1");
  auto dst = vfs::Path().child("scratch").child("deadline");
  auto report = hybrid->checkout_hierarchy("p", "top", alice, dst, /*workers=*/1,
                                           /*timeout_us=*/1);
  faultsim::Injector::global().disarm();
  ASSERT_TRUE(report.ok()) << report.error().to_text();
  EXPECT_EQ(report->failures.size(), 3u);
  EXPECT_TRUE(report->rolled_back);
  EXPECT_GE(report->timeouts, 1u);
  EXPECT_TRUE(tree_contents(hybrid->fs(), dst).empty());
}

TEST_F(FaultRecoveryTest, OmsCommitFaultLeavesTransactionAbortable) {
  support::SimClock clock;
  oms::Schema schema;
  ASSERT_TRUE(schema.define_class({"Node", "", {{"label", oms::AttrType::text}}}).ok());
  oms::Store store(schema, &clock);
  arm("oms.commit@1");
  ASSERT_TRUE(store.begin().ok());
  auto id = store.create("Node");
  ASSERT_TRUE(id.ok());
  auto commit = store.commit();
  ASSERT_FALSE(commit.ok());
  EXPECT_EQ(commit.error().code, Errc::io_error);
  // The injected failure left the transaction open with its undo
  // journal intact; abort unwinds to the pre-transaction state.
  EXPECT_TRUE(store.in_transaction());
  EXPECT_TRUE(store.abort().ok());
  EXPECT_FALSE(store.exists(*id));
  EXPECT_EQ(store.object_count(), 0u);
  faultsim::Injector::global().disarm();
  // And the next transaction commits cleanly.
  ASSERT_TRUE(store.begin().ok());
  ASSERT_TRUE(store.create("Node").ok());
  EXPECT_TRUE(store.commit().ok());
  EXPECT_EQ(store.object_count(), 1u);
}

// ---------------------------------------------------------------------------
// TSan lane: parallel checkout workers racing injected faults. The
// assertions are deliberately coarse (no torn files, counters add up);
// the value is the data-race coverage of retry/rollback under load.

TEST_F(FaultRecoveryTest, ParallelCheckoutStormUnderInjectedFaults) {
  build_world();
  auto& fs = hybrid->fs();
  auto oracle_dst = vfs::Path().child("scratch").child("storm_oracle");
  auto oracle = hybrid->checkout_hierarchy("p", "top", alice, oracle_dst);
  ASSERT_TRUE(oracle.ok());
  const auto want = tree_contents(fs, oracle_dst);

  arm("seed=7;transfer.export_item=0.15");
  constexpr int kThreads = 4;
  constexpr int kRounds = 6;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    // Each worker checks out into its OWN destination directory --
    // concurrent checkouts into one directory would race on the
    // journal pre-images by design.
    threads.emplace_back([this, t] {
      auto dst = vfs::Path().child("scratch").child("storm" + std::to_string(t));
      for (int round = 0; round < kRounds; ++round) {
        auto report = hybrid->checkout_hierarchy("p", "top", alice, dst, /*workers=*/4);
        if (report.ok() && !report->failures.empty()) {
          // rolled-back attempt: the directory must be clean again
          EXPECT_TRUE(report->rolled_back);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  faultsim::Injector::global().disarm();

  // Converge every lane with one fault-free pass, then require the
  // oracle tree everywhere: no torn or half-rolled-back state may
  // survive the storm.
  for (int t = 0; t < kThreads; ++t) {
    auto dst = vfs::Path().child("scratch").child("storm" + std::to_string(t));
    auto last = hybrid->checkout_hierarchy("p", "top", alice, dst);
    ASSERT_TRUE(last.ok());
    EXPECT_TRUE(last->failures.empty());
    EXPECT_EQ(tree_contents(fs, dst), want) << "lane " << t;
  }
}

// ---------------------------------------------------------------------------
// Executor parity: moving checkout lanes from per-call std::threads to
// the shared work-stealing pool must change NOTHING observable.

TEST_F(FaultRecoveryTest, CheckoutIsBitIdenticalAcrossWorkersAndExecutorLanes) {
  // workers=1 runs inline on the caller (no pool at all); workers=8
  // fans out on the shared executor. Identical worlds => identical
  // trees, reports and transfer stats.
  auto run = [this](std::size_t workers) {
    build_world();
    auto dst = vfs::Path().child("scratch").child("det");
    auto report = hybrid->checkout_hierarchy("p", "top", alice, dst, workers);
    EXPECT_TRUE(report.ok());
    auto trees = tree_contents(hybrid->fs(), dst);
    const auto stats = hybrid->transfer().stats_snapshot();
    return std::make_tuple(trees, report.ok() ? report->exported : 0u,
                           report.ok() ? report->cache_hits : 0u, stats.exports,
                           stats.bytes_exported, stats.cache_hits, stats.cache_misses);
  };
  const auto serial = run(1);
  const auto pooled = run(8);
  EXPECT_EQ(serial, pooled);
  EXPECT_EQ(std::get<0>(serial).size(), 3u);
}

// Fault-injection parity on executor lanes: an armed plan draws the
// SAME per-item decisions whether the items run inline (workers=1) or
// on stolen executor lanes (workers=8), because ordinal sets key on
// (seed, site, per-site ordinal) -- interleaving-invariant by design
// (docs/fault-injection.md). This is the same property the pinned-seed
// fault-matrix CI leg locks down end to end.
TEST_F(FaultRecoveryTest, InjectedFaultCountsMatchAcrossExecutorLanes) {
  // Explicit ordinals 1 and 2 fault. WHICH item draws them depends on
  // lane interleaving, but both faults land in the consumed ordinal
  // prefix and both retries succeed, so every aggregate -- injected
  // counts, retries, failures, bytes on disk -- is invariant.
  auto run = [this](std::size_t workers) {
    build_world();
    arm("transfer.export_item@1,2");
    auto dst = vfs::Path().child("scratch").child("parity");
    auto report = hybrid->checkout_hierarchy("p", "top", alice, dst, workers);
    const auto injected = faultsim::Injector::global().injected_by_site();
    faultsim::Injector::global().disarm();
    EXPECT_TRUE(report.ok());
    EXPECT_TRUE(!report.ok() || report->failures.empty());
    return std::make_tuple(injected, report.ok() ? report->retries : 0u,
                           tree_contents(hybrid->fs(), dst));
  };
  const auto serial = run(1);
  const auto pooled = run(8);
  EXPECT_EQ(serial, pooled);
  const auto& by_site = std::get<0>(serial);
  ASSERT_EQ(by_site.size(), 1u);
  EXPECT_EQ(by_site[0].first, "transfer.export_item");
  EXPECT_EQ(by_site[0].second, 2u);
}

}  // namespace
}  // namespace jfm::coupling
