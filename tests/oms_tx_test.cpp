// Transaction semantics, including a randomized property test: any
// sequence of mutations followed by abort() must restore the store to a
// state indistinguishable from the pre-transaction snapshot (compared
// through the canonical dump).

#include <gtest/gtest.h>

#include "jfm/oms/dump.hpp"
#include "jfm/oms/store.hpp"
#include "jfm/support/rng.hpp"

namespace jfm::oms {
namespace {

using support::Errc;

Schema tx_schema() {
  Schema schema;
  EXPECT_TRUE(schema
                  .define_class({"Node",
                                 "",
                                 {{"label", AttrType::text}, {"weight", AttrType::integer}}})
                  .ok());
  EXPECT_TRUE(schema.define_relation({"edge", "Node", "Node", Cardinality::many_to_many}).ok());
  return schema;
}

class TxTest : public ::testing::Test {
 protected:
  support::SimClock clock;
  Store store{tx_schema(), &clock};
};

TEST_F(TxTest, CommitKeepsChanges) {
  ASSERT_TRUE(store.begin().ok());
  auto id = *store.create("Node");
  ASSERT_TRUE(store.set(id, "label", AttrValue(std::string("x"))).ok());
  ASSERT_TRUE(store.commit().ok());
  EXPECT_TRUE(store.exists(id));
  EXPECT_EQ(*store.get_text(id, "label"), "x");
}

TEST_F(TxTest, AbortRollsBackCreation) {
  ASSERT_TRUE(store.begin().ok());
  auto id = *store.create("Node");
  ASSERT_TRUE(store.abort().ok());
  EXPECT_FALSE(store.exists(id));
  EXPECT_EQ(store.object_count(), 0u);
}

TEST_F(TxTest, AbortRestoresDestroyedObjectWithLinks) {
  auto a = *store.create("Node");
  auto b = *store.create("Node");
  ASSERT_TRUE(store.set(a, "label", AttrValue(std::string("keep"))).ok());
  ASSERT_TRUE(store.link("edge", a, b).ok());
  ASSERT_TRUE(store.begin().ok());
  ASSERT_TRUE(store.destroy(a).ok());
  EXPECT_FALSE(store.exists(a));
  ASSERT_TRUE(store.abort().ok());
  ASSERT_TRUE(store.exists(a));
  EXPECT_EQ(*store.get_text(a, "label"), "keep");
  EXPECT_TRUE(store.linked("edge", a, b));
}

TEST_F(TxTest, AbortRestoresAttributeValues) {
  auto id = *store.create("Node");
  ASSERT_TRUE(store.set(id, "weight", AttrValue(std::int64_t{1})).ok());
  ASSERT_TRUE(store.begin().ok());
  ASSERT_TRUE(store.set(id, "weight", AttrValue(std::int64_t{99})).ok());
  ASSERT_TRUE(store.set(id, "label", AttrValue(std::string("new"))).ok());
  ASSERT_TRUE(store.abort().ok());
  EXPECT_EQ(*store.get_int(id, "weight"), 1);
  EXPECT_EQ(store.get(id, "label").code(), Errc::not_found);
}

TEST_F(TxTest, AbortRestoresLinks) {
  auto a = *store.create("Node");
  auto b = *store.create("Node");
  auto c = *store.create("Node");
  ASSERT_TRUE(store.link("edge", a, b).ok());
  ASSERT_TRUE(store.begin().ok());
  ASSERT_TRUE(store.unlink("edge", a, b).ok());
  ASSERT_TRUE(store.link("edge", a, c).ok());
  ASSERT_TRUE(store.abort().ok());
  EXPECT_TRUE(store.linked("edge", a, b));
  EXPECT_FALSE(store.linked("edge", a, c));
}

TEST_F(TxTest, NestedBeginRejected) {
  ASSERT_TRUE(store.begin().ok());
  EXPECT_EQ(store.begin().code(), Errc::invalid_argument);
  ASSERT_TRUE(store.commit().ok());
  EXPECT_EQ(store.commit().code(), Errc::invalid_argument);
  EXPECT_EQ(store.abort().code(), Errc::invalid_argument);
}

// ---------------- property test: abort == time machine -------------------

struct AbortProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AbortProperty, RandomMutationsAbortRestoresDump) {
  support::SimClock clock;
  Store store(tx_schema(), &clock);
  support::Rng rng(GetParam());

  // a random base population, committed
  std::vector<ObjectId> ids;
  for (int i = 0; i < 20; ++i) {
    auto id = *store.create("Node");
    (void)store.set(id, "label", AttrValue(rng.identifier(6)));
    (void)store.set(id, "weight", AttrValue(rng.range(0, 100)));
    ids.push_back(id);
  }
  for (int i = 0; i < 30; ++i) {
    (void)store.link("edge", rng.pick(ids), rng.pick(ids));
  }
  const std::string snapshot = Dump::to_text(store);

  ASSERT_TRUE(store.begin().ok());
  for (int i = 0; i < 200; ++i) {
    switch (rng.below(5)) {
      case 0: {
        auto id = store.create("Node");
        if (id.ok()) ids.push_back(*id);
        break;
      }
      case 1: {
        ObjectId id = rng.pick(ids);
        if (store.exists(id)) (void)store.destroy(id);
        break;
      }
      case 2:
        (void)store.set(rng.pick(ids), "weight", AttrValue(rng.range(0, 1000)));
        break;
      case 3:
        (void)store.link("edge", rng.pick(ids), rng.pick(ids));
        break;
      case 4:
        (void)store.unlink("edge", rng.pick(ids), rng.pick(ids));
        break;
    }
  }
  ASSERT_TRUE(store.abort().ok());
  EXPECT_EQ(Dump::to_text(store), snapshot);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AbortProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u));

}  // namespace
}  // namespace jfm::oms
