// Design-file envelope, dynamic default-version hierarchy binding, and
// non-isomorphic hierarchies (paper s2.2/s2.3).

#include <gtest/gtest.h>

#include "jfm/fmcad/hierarchy.hpp"
#include "jfm/fmcad/session.hpp"

namespace jfm::fmcad {
namespace {

using support::Errc;

TEST(DesignFile, SerializeParseRoundTrip) {
  DesignFile file;
  file.cell = "alu";
  file.view = "schematic";
  file.viewtype = "schematic";
  file.uses = {{"adder", "schematic"}, {"shifter", "schematic"}};
  file.payload = "line1\nline2\n";
  auto parsed = DesignFile::parse(file.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->cell, "alu");
  EXPECT_EQ(parsed->view, "schematic");
  EXPECT_EQ(parsed->viewtype, "schematic");
  ASSERT_EQ(parsed->uses.size(), 2u);
  EXPECT_EQ(parsed->uses[1].cell, "shifter");
  EXPECT_EQ(parsed->payload, "line1\nline2\n");
}

TEST(DesignFile, ParseErrors) {
  EXPECT_EQ(DesignFile::parse("garbage").code(), Errc::parse_error);
  EXPECT_EQ(DesignFile::parse("cvfile 1\npayload\n").code(), Errc::parse_error);  // no cellview
  EXPECT_EQ(DesignFile::parse("cvfile 1\ncellview a b c\n").code(),
            Errc::parse_error);  // no payload marker
  EXPECT_EQ(DesignFile::parse("cvfile 1\ncellview a b c\nbogus line\npayload\n").code(),
            Errc::parse_error);
}

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(fs.mkdirs(vfs::Path().child("libs")).ok());
    auto lib = Library::create(&fs, &clock, vfs::Path().child("libs"), "work");
    ASSERT_TRUE(lib.ok());
    library = *lib;
    session = std::make_unique<DesignerSession>(library, "u");
    ASSERT_TRUE(session->define_view("schematic", "schematic").ok());
    ASSERT_TRUE(session->define_view("layout", "layout").ok());
  }

  void put(const std::string& cell, const std::string& view,
           const std::vector<CellViewKey>& uses) {
    if (!library->meta().has_cell(cell)) {
      ASSERT_TRUE(session->create_cell(cell).ok());
    }
    CellViewKey key{cell, view};
    if (library->meta().find_cellview(key) == nullptr) {
      ASSERT_TRUE(session->create_cellview(key).ok());
    }
    DesignFile file;
    file.cell = cell;
    file.view = view;
    file.viewtype = view;
    file.uses = uses;
    file.payload = "payload of " + cell + "/" + view + "\n";
    ASSERT_TRUE(session->checkout(key).ok());
    ASSERT_TRUE(session->write_working(key, file.serialize()).ok());
    ASSERT_TRUE(session->checkin(key).ok());
  }

  support::SimClock clock;
  vfs::FileSystem fs{&clock};
  std::shared_ptr<Library> library;
  std::unique_ptr<DesignerSession> session;
};

TEST_F(BinderTest, ExpandsTreeWithDefaultVersions) {
  put("leaf1", "schematic", {});
  put("leaf2", "schematic", {});
  put("mid", "schematic", {{"leaf1", "schematic"}, {"leaf2", "schematic"}});
  put("top", "schematic", {{"mid", "schematic"}, {"leaf1", "schematic"}});

  HierarchyBinder binder(library.get());
  auto bound = binder.expand({"top", "schematic"});
  ASSERT_TRUE(bound.ok());
  EXPECT_TRUE(bound->dangling.empty());
  EXPECT_EQ(bound->root.node_count(), 5u);
  EXPECT_EQ(bound->root.depth(), 3);
  EXPECT_EQ(bound->root.children.size(), 2u);
  EXPECT_EQ(bound->root.bound_version, 1);
}

TEST_F(BinderTest, DynamicBindingFollowsLatestVersion) {
  put("leaf1", "schematic", {});
  put("top", "schematic", {{"leaf1", "schematic"}});
  // new leaf version changes what the same top binds to
  put("leaf1", "schematic", {});  // checkin -> version 2
  HierarchyBinder binder(library.get());
  auto bound = binder.expand({"top", "schematic"});
  ASSERT_TRUE(bound.ok());
  ASSERT_EQ(bound->root.children.size(), 1u);
  EXPECT_EQ(bound->root.children[0].bound_version, 2);  // default = latest
}

TEST_F(BinderTest, DanglingReferencesTolerated) {
  put("top", "schematic", {{"ghost", "schematic"}});
  HierarchyBinder binder(library.get());
  auto bound = binder.expand({"top", "schematic"});
  ASSERT_TRUE(bound.ok());  // FMCAD's lax consistency: no failure...
  ASSERT_EQ(bound->dangling.size(), 1u);  // ...but the hole is reported
  EXPECT_EQ(bound->dangling[0], "ghost/schematic");
  EXPECT_EQ(bound->root.children[0].bound_version, 0);
}

TEST_F(BinderTest, CycleDetected) {
  put("a", "schematic", {{"b", "schematic"}});
  put("b", "schematic", {{"a", "schematic"}});
  HierarchyBinder binder(library.get());
  auto bound = binder.expand({"a", "schematic"});
  ASSERT_FALSE(bound.ok());
  EXPECT_EQ(bound.error().code, Errc::consistency_violation);
}

TEST_F(BinderTest, SignatureIgnoresChildOrder) {
  put("x", "schematic", {});
  put("y", "schematic", {});
  put("p1", "schematic", {{"x", "schematic"}, {"y", "schematic"}});
  put("p2", "schematic", {{"y", "schematic"}, {"x", "schematic"}});
  HierarchyBinder binder(library.get());
  auto s1 = binder.signature({"p1", "schematic"});
  auto s2 = binder.signature({"p2", "schematic"});
  ASSERT_TRUE(s1.ok() && s2.ok());
  // same children, different order: same *structure* below, only the
  // root cell name differs
  EXPECT_EQ(s1->substr(s1->find(' ')), s2->substr(s2->find(' ')));
}

TEST_F(BinderTest, IsomorphicAndNonIsomorphicViews) {
  put("sub", "schematic", {});
  put("sub", "layout", {});
  put("other", "schematic", {});
  put("other", "layout", {});
  // isomorphic: both views of top use {sub}
  put("top", "schematic", {{"sub", "schematic"}});
  put("top", "layout", {{"sub", "layout"}});
  auto same = isomorphic(*library, "top", "schematic", "layout");
  ASSERT_TRUE(same.ok());
  EXPECT_TRUE(*same);
  // now the layout hierarchy diverges (FMCAD supports this, s2.2)
  put("top", "layout", {{"sub", "layout"}, {"other", "layout"}});
  same = isomorphic(*library, "top", "schematic", "layout");
  ASSERT_TRUE(same.ok());
  EXPECT_FALSE(*same);
}

class LibrarySetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(fs.mkdirs(vfs::Path().child("libs")).ok());
    stdcells = make_library("stdcells");
    design = make_library("design");
    // standard cells: inv and nand2
    put(*stdcells, "inv", {});
    put(*stdcells, "nand2", {});
    // the design instantiates standard cells across the library boundary
    put(*design, "alu",
        {{"inv", "schematic"}, {"nand2", "schematic"}, {"nand2", "schematic"}});
  }

  std::shared_ptr<Library> make_library(const std::string& name) {
    auto lib = Library::create(&fs, &clock, vfs::Path().child("libs"), name);
    EXPECT_TRUE(lib.ok());
    DesignerSession admin(*lib, "admin");
    EXPECT_TRUE(admin.define_view("schematic", "schematic").ok());
    return *lib;
  }

  void put(Library& lib, const std::string& cell, const std::vector<CellViewKey>& uses) {
    DesignerSession session(
        std::shared_ptr<Library>(&lib, [](Library*) {}), "builder");
    if (!lib.meta().has_cell(cell)) ASSERT_TRUE(session.create_cell(cell).ok());
    CellViewKey key{cell, "schematic"};
    if (lib.meta().find_cellview(key) == nullptr) {
      ASSERT_TRUE(session.create_cellview(key).ok());
    }
    DesignFile file;
    file.cell = cell;
    file.view = "schematic";
    file.viewtype = "schematic";
    file.uses = uses;
    file.payload = "payload " + cell + "\n";
    ASSERT_TRUE(session.checkout(key).ok());
    ASSERT_TRUE(session.write_working(key, file.serialize()).ok());
    ASSERT_TRUE(session.checkin(key).ok());
  }

  support::SimClock clock;
  vfs::FileSystem fs{&clock};
  std::shared_ptr<Library> stdcells;
  std::shared_ptr<Library> design;
};

TEST_F(LibrarySetTest, OwnerLookupSearchesInOrder) {
  LibrarySet path;
  path.add(design.get());
  path.add(stdcells.get());
  EXPECT_EQ(path.owner_of({"alu", "schematic"}), design.get());
  EXPECT_EQ(path.owner_of({"inv", "schematic"}), stdcells.get());
  EXPECT_EQ(path.owner_of({"ghost", "schematic"}), nullptr);
  auto text = path.read_default_text({"inv", "schematic"});
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("payload inv"), std::string::npos);
  EXPECT_EQ(path.read_default_text({"ghost", "schematic"}).code(), Errc::not_found);
}

TEST_F(LibrarySetTest, BinderCrossesLibraryBoundaries) {
  LibrarySet path;
  path.add(design.get());
  path.add(stdcells.get());
  HierarchyBinder binder(&path);
  auto bound = binder.expand({"alu", "schematic"});
  ASSERT_TRUE(bound.ok()) << bound.error().to_text();
  EXPECT_TRUE(bound->dangling.empty());
  EXPECT_EQ(bound->root.node_count(), 4u);  // alu + inv + 2x nand2
  // without the stdcell library the same references dangle (and FMCAD
  // shrugs, as usual)
  LibrarySet lonely(design.get());
  HierarchyBinder narrow(&lonely);
  auto partial = narrow.expand({"alu", "schematic"});
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial->dangling.size(), 3u);
}

TEST_F(LibrarySetTest, ShadowingFollowsSearchOrder) {
  // the design library gains its own 'inv': it must shadow the stdcell
  put(*design, "inv", {});
  LibrarySet path;
  path.add(design.get());
  path.add(stdcells.get());
  EXPECT_EQ(path.owner_of({"inv", "schematic"}), design.get());
  // reversed order prefers the stdcell version
  LibrarySet reversed;
  reversed.add(stdcells.get());
  reversed.add(design.get());
  EXPECT_EQ(reversed.owner_of({"inv", "schematic"}), stdcells.get());
}

TEST_F(BinderTest, ExpandOfEmptyCellviewFails) {
  ASSERT_TRUE(session->create_cell("empty").ok());
  ASSERT_TRUE(session->create_cellview({"empty", "schematic"}).ok());
  HierarchyBinder binder(library.get());
  auto bound = binder.expand({"empty", "schematic"});
  ASSERT_FALSE(bound.ok());
  EXPECT_EQ(bound.error().code, Errc::not_found);
}

}  // namespace
}  // namespace jfm::fmcad
