// The secondary-index layer must be observationally invisible: every
// indexed query answers exactly what a naive full scan over the
// primary structures would answer, through any interleaving of
// mutations, transactions and aborts.
//
// Two oracles enforce that here:
//   * a twin store built with StoreOptions{.secondary_indexes = false}
//     (the bench ablation) driven with the identical operation stream
//     -- every query is cross-checked between the two after each batch,
//     and the canonical dumps must stay byte-identical;
//   * the TSan variant: reader threads hammer the indexed queries while
//     a writer runs mutation bursts inside begin/commit/abort cycles,
//     proving index reads stay inside the store's reader-writer
//     discipline (shared reads, exclusive maintenance).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "jfm/oms/dump.hpp"
#include "jfm/oms/store.hpp"
#include "jfm/support/rng.hpp"
#include "test_seed.hpp"

namespace jfm::oms {
namespace {

using support::Errc;

Schema index_schema() {
  Schema schema;
  EXPECT_TRUE(schema.define_class({"Named", "", {{"name", AttrType::text}}}).ok());
  EXPECT_TRUE(schema
                  .define_class({"Cell",
                                 "Named",
                                 {{"group", AttrType::integer}, {"frozen", AttrType::boolean}}})
                  .ok());
  EXPECT_TRUE(schema.define_class({"Macro", "Cell", {{"ratio", AttrType::real}}}).ok());
  EXPECT_TRUE(schema.define_class({"Version", "", {{"number", AttrType::integer}}}).ok());
  EXPECT_TRUE(schema.define_relation({"edge", "Cell", "Cell", Cardinality::many_to_many}).ok());
  EXPECT_TRUE(
      schema.define_relation({"has_version", "Cell", "Version", Cardinality::one_to_many}).ok());
  return schema;
}

const char* kClasses[] = {"Named", "Cell", "Macro", "Version"};

AttrValue random_name(support::Rng& rng) {
  // a small name universe so finds hit often
  return AttrValue("n" + std::to_string(rng.below(64)));
}

/// Apply one random operation to both stores; results must agree.
void apply_op(support::Rng& rng, Store& indexed, Store& oracle, std::vector<ObjectId>& ids,
              bool& tx_open) {
  switch (rng.below(10)) {
    case 0: {  // create
      const char* cls = kClasses[rng.below(4)];
      auto a = indexed.create(cls);
      auto b = oracle.create(cls);
      ASSERT_EQ(a.ok(), b.ok());
      if (a.ok()) {
        ASSERT_EQ(*a, *b);  // same op stream => same id allocation
        ids.push_back(*a);
      }
      break;
    }
    case 1: {  // destroy
      if (ids.empty()) break;
      ObjectId id = rng.pick(ids);
      auto a = indexed.destroy(id);
      auto b = oracle.destroy(id);
      ASSERT_EQ(a.code(), b.code());
      break;
    }
    case 2:
    case 3: {  // set name (the hot find_one key)
      if (ids.empty()) break;
      ObjectId id = rng.pick(ids);
      auto value = random_name(rng);
      auto a = indexed.set(id, "name", value);
      auto b = oracle.set(id, "name", value);
      ASSERT_EQ(a.code(), b.code());
      break;
    }
    case 4: {  // set a typed attribute (sometimes the wrong type)
      if (ids.empty()) break;
      ObjectId id = rng.pick(ids);
      const char* attr = rng.chance(0.5) ? "group" : "number";
      AttrValue value = rng.chance(0.8) ? AttrValue(rng.range(0, 7))
                                        : AttrValue(rng.identifier(4));
      auto a = indexed.set(id, attr, value);
      auto b = oracle.set(id, attr, value);
      ASSERT_EQ(a.code(), b.code());
      break;
    }
    case 5: {  // link
      if (ids.empty()) break;
      ObjectId from = rng.pick(ids);
      ObjectId to = rng.pick(ids);
      const char* rel = rng.chance(0.7) ? "edge" : "has_version";
      auto a = indexed.link(rel, from, to);
      auto b = oracle.link(rel, from, to);
      ASSERT_EQ(a.code(), b.code());
      break;
    }
    case 6: {  // unlink
      if (ids.empty()) break;
      ObjectId from = rng.pick(ids);
      ObjectId to = rng.pick(ids);
      auto a = indexed.unlink("edge", from, to);
      auto b = oracle.unlink("edge", from, to);
      ASSERT_EQ(a.code(), b.code());
      break;
    }
    case 7: {  // begin
      auto a = indexed.begin();
      auto b = oracle.begin();
      ASSERT_EQ(a.code(), b.code());
      if (a.ok()) tx_open = true;
      break;
    }
    case 8: {  // commit
      auto a = indexed.commit();
      auto b = oracle.commit();
      ASSERT_EQ(a.code(), b.code());
      if (a.ok()) tx_open = false;
      break;
    }
    case 9: {  // abort: the index restore path under test
      auto a = indexed.abort();
      auto b = oracle.abort();
      ASSERT_EQ(a.code(), b.code());
      if (a.ok()) tx_open = false;
      break;
    }
  }
}

/// Every indexed query answer must equal the full-scan oracle's.
void cross_check(support::Rng& rng, const Store& indexed, const Store& oracle,
                 const std::vector<ObjectId>& ids) {
  for (const char* cls : kClasses) {
    ASSERT_EQ(indexed.objects_of(cls), oracle.objects_of(cls)) << cls;
  }
  ASSERT_TRUE(indexed.objects_of("NoSuchClass").empty());
  for (int i = 0; i < 16; ++i) {
    const char* cls = kClasses[rng.below(4)];
    auto value = random_name(rng);
    ASSERT_EQ(indexed.find(cls, "name", value), oracle.find(cls, "name", value));
    ASSERT_EQ(indexed.find_one(cls, "name", value), oracle.find_one(cls, "name", value));
    AttrValue group(rng.range(0, 7));
    ASSERT_EQ(indexed.find("Cell", "group", group), oracle.find("Cell", "group", group));
  }
  if (!ids.empty()) {
    for (int i = 0; i < 16; ++i) {
      ObjectId from = rng.pick(ids);
      ObjectId to = rng.pick(ids);
      ASSERT_EQ(indexed.linked("edge", from, to), oracle.linked("edge", from, to));
      auto at = indexed.targets("edge", from);
      auto bt = oracle.targets("edge", from);
      ASSERT_EQ(at.ok(), bt.ok());
      if (at.ok()) {
        ASSERT_EQ(*at, *bt);  // link order must match, not just the set
      }
    }
  }
}

struct IndexOracleProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IndexOracleProperty, TenThousandOpsAgreeWithFullScanOracle) {
  support::SimClock clock_a, clock_b;
  Store indexed(index_schema(), &clock_a);
  Store oracle(index_schema(), &clock_b, StoreOptions{.secondary_indexes = false});
  ASSERT_TRUE(indexed.options().secondary_indexes);
  ASSERT_FALSE(oracle.options().secondary_indexes);

  support::Rng rng(GetParam());
  std::vector<ObjectId> ids;
  bool tx_open = false;
  constexpr int kOps = 10000;
  constexpr int kBatch = 250;
  for (int op = 0; op < kOps; ++op) {
    ASSERT_NO_FATAL_FAILURE(apply_op(rng, indexed, oracle, ids, tx_open));
    if ((op + 1) % kBatch == 0) {
      ASSERT_NO_FATAL_FAILURE(cross_check(rng, indexed, oracle, ids));
    }
  }
  if (tx_open) {
    ASSERT_TRUE(indexed.abort().ok());
    ASSERT_TRUE(oracle.abort().ok());
  }
  ASSERT_NO_FATAL_FAILURE(cross_check(rng, indexed, oracle, ids));
  // same logical state bit for bit, after every abort has replayed its
  // index restores
  EXPECT_EQ(Dump::to_text(indexed), Dump::to_text(oracle));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexOracleProperty,
                         ::testing::ValuesIn(jfm::testing::test_seeds<std::uint64_t>(
                             "oms-index", {11u, 23u, 47u, 101u})));

// ---------------- TSan variant: readers during mutation bursts ------------

TEST(IndexConcurrency, ReadersDuringMutationBursts) {
  support::SimClock clock;
  Store store(index_schema(), &clock);
  support::Rng seed_rng(7);

  // a committed base population the readers can always resolve
  std::vector<ObjectId> ids;
  for (int i = 0; i < 64; ++i) {
    auto id = *store.create(i % 2 == 0 ? "Cell" : "Macro");
    ASSERT_TRUE(store.set(id, "name", AttrValue("base" + std::to_string(i))).ok());
    ids.push_back(id);
  }
  for (int i = 0; i + 1 < 64; i += 2) {
    ASSERT_TRUE(store.link("edge", ids[i], ids[i + 1]).ok());
  }

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&store, &ids, &done, r] {
      support::Rng rng(1000u + static_cast<std::uint64_t>(r));
      // bounded, not while(!done): four tight reader loops can starve
      // the writer indefinitely on a reader-preferring shared_mutex
      for (int iter = 0; iter < 30000 && !done.load(std::memory_order_acquire); ++iter) {
        auto hit = store.find_one("Named", "name",
                                  AttrValue("base" + std::to_string(rng.below(64))));
        if (hit.has_value() && !store.exists(*hit)) {
          // the id was destroyed between the two calls: legal
          // (read-committed per call), just must not crash
        }
        (void)store.objects_of("Cell");
        (void)store.linked("edge", rng.pick(ids), rng.pick(ids));
        (void)store.targets("edge", rng.pick(ids));
        (void)store.find("Cell", "group", AttrValue(rng.range(0, 7)));
      }
    });
  }

  // writer: transactional mutation bursts, half of them aborted, so the
  // readers race against index maintenance and undo replay
  support::Rng rng(9);
  std::vector<ObjectId> scratch = ids;
  for (int burst = 0; burst < 60; ++burst) {
    ASSERT_TRUE(store.begin().ok());
    for (int i = 0; i < 40; ++i) {
      switch (rng.below(5)) {
        case 0:
          if (auto id = store.create("Cell"); id.ok()) scratch.push_back(*id);
          break;
        case 1:
          // aborted bursts may rename the base population (undo must
          // restore its index entries); committing bursts only rename
          // scratch objects so the readers' probes keep resolving
          if (burst % 2 == 0) {
            (void)store.set(rng.pick(scratch), "name", AttrValue(rng.identifier(5)));
          } else if (scratch.size() > 64) {
            (void)store.set(scratch[64 + rng.below(scratch.size() - 64)], "name",
                            AttrValue(rng.identifier(5)));
          }
          break;
        case 2:
          (void)store.link("edge", rng.pick(scratch), rng.pick(scratch));
          break;
        case 3:
          (void)store.unlink("edge", rng.pick(scratch), rng.pick(scratch));
          break;
        case 4:
          if (scratch.size() > 64) {  // keep the base population alive
            (void)store.destroy(scratch.back());
            scratch.pop_back();
          }
          break;
      }
    }
    ASSERT_TRUE((burst % 2 == 0 ? store.abort() : store.commit()).ok());
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  // sanity: the base population survived every aborted burst
  EXPECT_EQ(store.find_one("Named", "name", AttrValue(std::string("base0"))), ids[0]);
}

}  // namespace
}  // namespace jfm::oms
