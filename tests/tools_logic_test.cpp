// Four-valued gate evaluation, exhaustively via parameterized sweeps.

#include <gtest/gtest.h>

#include "jfm/tools/logic.hpp"

namespace jfm::tools {
namespace {

const Logic kAll[] = {Logic::L0, Logic::L1, Logic::X, Logic::Z};

TEST(Logic, CharConversion) {
  EXPECT_EQ(to_char(Logic::L0), '0');
  EXPECT_EQ(to_char(Logic::L1), '1');
  EXPECT_EQ(to_char(Logic::X), 'X');
  EXPECT_EQ(to_char(Logic::Z), 'Z');
  for (Logic v : kAll) {
    auto back = logic_from(to_char(v));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
  }
  EXPECT_TRUE(logic_from('x').ok());
  EXPECT_FALSE(logic_from('q').ok());
}

TEST(Logic, NormalizeZ) {
  EXPECT_EQ(normalize_input(Logic::Z), Logic::X);
  EXPECT_EQ(normalize_input(Logic::L1), Logic::L1);
}

TEST(Logic, NotTruthTable) {
  EXPECT_EQ(eval_not(Logic::L0), Logic::L1);
  EXPECT_EQ(eval_not(Logic::L1), Logic::L0);
  EXPECT_EQ(eval_not(Logic::X), Logic::X);
  EXPECT_EQ(eval_not(Logic::Z), Logic::X);
}

// Exhaustive 4x4 sweeps over every binary gate.
struct BinaryGateCase {
  const char* gate;
  // expected[a][b] indexed by Logic enum value
  char expected[4][4];
};

class BinaryGates : public ::testing::TestWithParam<BinaryGateCase> {};

TEST_P(BinaryGates, TruthTable) {
  const auto& param = GetParam();
  for (Logic a : kAll) {
    for (Logic b : kAll) {
      auto v = eval_gate(param.gate, {a, b});
      ASSERT_TRUE(v.ok());
      EXPECT_EQ(to_char(*v),
                param.expected[static_cast<int>(a)][static_cast<int>(b)])
          << param.gate << "(" << to_char(a) << "," << to_char(b) << ")";
    }
  }
}

// rows/cols: 0, 1, X, Z
INSTANTIATE_TEST_SUITE_P(
    AllGates, BinaryGates,
    ::testing::Values(
        BinaryGateCase{"AND",
                       {{'0', '0', '0', '0'},
                        {'0', '1', 'X', 'X'},
                        {'0', 'X', 'X', 'X'},
                        {'0', 'X', 'X', 'X'}}},
        BinaryGateCase{"OR",
                       {{'0', '1', 'X', 'X'},
                        {'1', '1', '1', '1'},
                        {'X', '1', 'X', 'X'},
                        {'X', '1', 'X', 'X'}}},
        BinaryGateCase{"NAND",
                       {{'1', '1', '1', '1'},
                        {'1', '0', 'X', 'X'},
                        {'1', 'X', 'X', 'X'},
                        {'1', 'X', 'X', 'X'}}},
        BinaryGateCase{"NOR",
                       {{'1', '0', 'X', 'X'},
                        {'0', '0', '0', '0'},
                        {'X', '0', 'X', 'X'},
                        {'X', '0', 'X', 'X'}}},
        BinaryGateCase{"XOR",
                       {{'0', '1', 'X', 'X'},
                        {'1', '0', 'X', 'X'},
                        {'X', 'X', 'X', 'X'},
                        {'X', 'X', 'X', 'X'}}},
        BinaryGateCase{"XNOR",
                       {{'1', '0', 'X', 'X'},
                        {'0', '1', 'X', 'X'},
                        {'X', 'X', 'X', 'X'},
                        {'X', 'X', 'X', 'X'}}}),
    [](const ::testing::TestParamInfo<BinaryGateCase>& info) {
      return info.param.gate;
    });

TEST(Logic, UnaryGatesThroughEvalGate) {
  EXPECT_EQ(*eval_gate("NOT", {Logic::L0}), Logic::L1);
  EXPECT_EQ(*eval_gate("BUF", {Logic::L1}), Logic::L1);
  EXPECT_EQ(*eval_gate("BUF", {Logic::Z}), Logic::X);
}

TEST(Logic, EvalGateErrors) {
  EXPECT_FALSE(eval_gate("AND", {Logic::L1}).ok());          // arity
  EXPECT_FALSE(eval_gate("NOT", {Logic::L1, Logic::L0}).ok());
  EXPECT_FALSE(eval_gate("FROB", {Logic::L1, Logic::L0}).ok());
}

TEST(Logic, MultiInputReducersDominance) {
  EXPECT_EQ(eval_and({Logic::L1, Logic::X, Logic::L0}), Logic::L0);  // 0 dominates X
  EXPECT_EQ(eval_or({Logic::L0, Logic::X, Logic::L1}), Logic::L1);   // 1 dominates X
  EXPECT_EQ(eval_and({}), Logic::L1);
  EXPECT_EQ(eval_or({}), Logic::L0);
  EXPECT_EQ(eval_xor({Logic::L1, Logic::L1, Logic::L1}), Logic::L1);
}

}  // namespace
}  // namespace jfm::tools
