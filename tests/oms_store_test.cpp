#include <gtest/gtest.h>

#include "jfm/oms/store.hpp"

namespace jfm::oms {
namespace {

using support::Errc;

Schema test_schema() {
  Schema schema;
  EXPECT_TRUE(schema.define_class({"Named", "", {{"name", AttrType::text, true}}}).ok());
  EXPECT_TRUE(schema
                  .define_class({"Cell",
                                 "Named",
                                 {{"count", AttrType::integer},
                                  {"ratio", AttrType::real},
                                  {"frozen", AttrType::boolean}}})
                  .ok());
  EXPECT_TRUE(schema.define_class({"Version", "", {{"number", AttrType::integer}}}).ok());
  EXPECT_TRUE(
      schema.define_relation({"has_version", "Cell", "Version", Cardinality::one_to_many}).ok());
  EXPECT_TRUE(
      schema.define_relation({"paired", "Cell", "Cell", Cardinality::one_to_one}).ok());
  EXPECT_TRUE(
      schema.define_relation({"related", "Cell", "Version", Cardinality::many_to_many}).ok());
  return schema;
}

class StoreTest : public ::testing::Test {
 protected:
  support::SimClock clock;
  Store store{test_schema(), &clock};
};

TEST_F(StoreTest, SchemaInheritanceQueries) {
  const Schema& s = store.schema();
  EXPECT_TRUE(s.is_a("Cell", "Named"));
  EXPECT_TRUE(s.is_a("Cell", "Cell"));
  EXPECT_FALSE(s.is_a("Named", "Cell"));
  EXPECT_FALSE(s.is_a("Nope", "Named"));
  EXPECT_NE(s.find_attribute("Cell", "name"), nullptr);  // inherited
  EXPECT_EQ(s.find_attribute("Version", "name"), nullptr);
  auto attrs = s.attributes_of("Cell");
  ASSERT_EQ(attrs.size(), 4u);
  EXPECT_EQ(attrs[0].name, "name");  // base attributes first
}

TEST_F(StoreTest, SchemaRejectsBadDefinitions) {
  Schema s = test_schema();
  EXPECT_EQ(s.define_class({"Cell", "", {}}).code(), Errc::already_exists);
  EXPECT_EQ(s.define_class({"X", "Missing", {}}).code(), Errc::not_found);
  EXPECT_EQ(s.define_class({"Y", "Named", {{"name", AttrType::text}}}).code(),
            Errc::already_exists);  // shadowing
  EXPECT_EQ(s.define_class({"Z", "", {{"a", AttrType::text}, {"a", AttrType::text}}}).code(),
            Errc::already_exists);
  EXPECT_EQ(s.define_relation({"r", "Cell", "Missing", Cardinality::many_to_many}).code(),
            Errc::not_found);
  EXPECT_EQ(s.define_class({"9bad", "", {}}).code(), Errc::invalid_argument);
}

TEST_F(StoreTest, CreateDestroyAndClassOf) {
  auto id = store.create("Cell");
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(store.exists(*id));
  EXPECT_EQ(*store.class_of(*id), "Cell");
  EXPECT_EQ(store.object_count(), 1u);
  EXPECT_TRUE(store.destroy(*id).ok());
  EXPECT_FALSE(store.exists(*id));
  EXPECT_EQ(store.destroy(*id).code(), Errc::not_found);
  EXPECT_EQ(store.create("Nope").code(), Errc::not_found);
}

TEST_F(StoreTest, AttributesTypeChecked) {
  auto id = *store.create("Cell");
  EXPECT_TRUE(store.set(id, "name", AttrValue(std::string("alu"))).ok());
  EXPECT_TRUE(store.set(id, "count", AttrValue(std::int64_t{3})).ok());
  EXPECT_TRUE(store.set(id, "ratio", AttrValue(0.5)).ok());
  EXPECT_TRUE(store.set(id, "frozen", AttrValue(true)).ok());
  EXPECT_EQ(store.set(id, "count", AttrValue(std::string("x"))).code(), Errc::invalid_argument);
  EXPECT_EQ(store.set(id, "missing", AttrValue(true)).code(), Errc::not_found);
  EXPECT_EQ(*store.get_text(id, "name"), "alu");
  EXPECT_EQ(*store.get_int(id, "count"), 3);
  EXPECT_EQ(*store.get_real(id, "ratio"), 0.5);
  EXPECT_EQ(*store.get_bool(id, "frozen"), true);
  EXPECT_EQ(store.get(id, "ratio2").code(), Errc::not_found);
  EXPECT_EQ(store.get_int(id, "name").code(), Errc::invalid_argument);
}

TEST_F(StoreTest, LinksRespectClassesAndCardinality) {
  auto cell = *store.create("Cell");
  auto cell2 = *store.create("Cell");
  auto v1 = *store.create("Version");
  auto v2 = *store.create("Version");

  EXPECT_TRUE(store.link("has_version", cell, v1).ok());
  EXPECT_TRUE(store.link("has_version", cell, v2).ok());
  // one_to_many: a version belongs to exactly one cell
  EXPECT_EQ(store.link("has_version", cell2, v1).code(), Errc::invalid_argument);
  // duplicate link
  EXPECT_EQ(store.link("has_version", cell, v1).code(), Errc::already_exists);
  // wrong classes
  EXPECT_EQ(store.link("has_version", v1, cell).code(), Errc::invalid_argument);
  // one_to_one
  EXPECT_TRUE(store.link("paired", cell, cell2).ok());
  auto cell3 = *store.create("Cell");
  EXPECT_EQ(store.link("paired", cell, cell3).code(), Errc::invalid_argument);
  EXPECT_EQ(store.link("paired", cell3, cell2).code(), Errc::invalid_argument);

  auto targets = store.targets("has_version", cell);
  ASSERT_TRUE(targets.ok());
  ASSERT_EQ(targets->size(), 2u);
  EXPECT_EQ((*targets)[0], v1);  // link order preserved
  auto sources = store.sources("has_version", v1);
  ASSERT_TRUE(sources.ok());
  ASSERT_EQ(sources->size(), 1u);
  EXPECT_EQ((*sources)[0], cell);
}

TEST_F(StoreTest, UnlinkAndLinked) {
  auto cell = *store.create("Cell");
  auto v = *store.create("Version");
  ASSERT_TRUE(store.link("related", cell, v).ok());
  EXPECT_TRUE(store.linked("related", cell, v));
  EXPECT_TRUE(store.unlink("related", cell, v).ok());
  EXPECT_FALSE(store.linked("related", cell, v));
  EXPECT_EQ(store.unlink("related", cell, v).code(), Errc::not_found);
}

TEST_F(StoreTest, DestroyCleansUpLinks) {
  auto cell = *store.create("Cell");
  auto v = *store.create("Version");
  ASSERT_TRUE(store.link("has_version", cell, v).ok());
  ASSERT_TRUE(store.destroy(v).ok());
  auto targets = store.targets("has_version", cell);
  ASSERT_TRUE(targets.ok());
  EXPECT_TRUE(targets->empty());
  // and the other direction
  auto v2 = *store.create("Version");
  ASSERT_TRUE(store.link("has_version", cell, v2).ok());
  ASSERT_TRUE(store.destroy(cell).ok());
  auto sources = store.sources("has_version", v2);
  ASSERT_TRUE(sources.ok());
  EXPECT_TRUE(sources->empty());
}

TEST_F(StoreTest, QueriesIncludeSubclassesAndFilter) {
  auto c1 = *store.create("Cell");
  auto c2 = *store.create("Cell");
  (void)*store.create("Version");
  ASSERT_TRUE(store.set(c1, "name", AttrValue(std::string("alu"))).ok());
  ASSERT_TRUE(store.set(c2, "name", AttrValue(std::string("rom"))).ok());
  EXPECT_EQ(store.objects_of("Named").size(), 2u);
  EXPECT_EQ(store.objects_of("Cell").size(), 2u);
  auto found = store.find("Cell", "name", AttrValue(std::string("rom")));
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], c2);
  EXPECT_TRUE(store.find_one("Cell", "name", AttrValue(std::string("alu"))).has_value());
  EXPECT_FALSE(store.find_one("Cell", "name", AttrValue(std::string("zz"))).has_value());
}

TEST_F(StoreTest, CreatedTimestampsAreOrdered) {
  auto a = *store.create("Cell");
  auto b = *store.create("Cell");
  EXPECT_LT(store.created_at(a), store.created_at(b));
}

// Regression: the relation edge sets answer linked()/duplicate checks,
// but targets()/sources() must keep returning *link-order* vectors.
TEST_F(StoreTest, TargetsAndSourcesPreserveLinkOrder) {
  auto cell = *store.create("Cell");
  auto v1 = *store.create("Version");
  auto v2 = *store.create("Version");
  auto v3 = *store.create("Version");
  // deliberately not id order
  ASSERT_TRUE(store.link("related", cell, v2).ok());
  ASSERT_TRUE(store.link("related", cell, v3).ok());
  ASSERT_TRUE(store.link("related", cell, v1).ok());
  auto targets = store.targets("related", cell);
  ASSERT_TRUE(targets.ok());
  EXPECT_EQ(*targets, (std::vector<ObjectId>{v2, v3, v1}));
  // unlink the middle element and relink it: it re-enters at the end
  ASSERT_TRUE(store.unlink("related", cell, v3).ok());
  ASSERT_TRUE(store.link("related", cell, v3).ok());
  targets = store.targets("related", cell);
  ASSERT_TRUE(targets.ok());
  EXPECT_EQ(*targets, (std::vector<ObjectId>{v2, v1, v3}));
  // sources side: three cells point at one version, in link order
  auto c2 = *store.create("Cell");
  auto c3 = *store.create("Cell");
  ASSERT_TRUE(store.link("related", c3, v1).ok());
  ASSERT_TRUE(store.link("related", c2, v1).ok());
  auto sources = store.sources("related", v1);
  ASSERT_TRUE(sources.ok());
  EXPECT_EQ(*sources, (std::vector<ObjectId>{cell, c3, c2}));
  // and the edge set agrees with the vectors after the churn
  EXPECT_TRUE(store.linked("related", cell, v3));
  EXPECT_FALSE(store.linked("related", c2, v2));
  EXPECT_EQ(store.link("related", cell, v3).code(), Errc::already_exists);
}

// The store freezes its copy of the schema at construction: the
// subclass closure is precomputed once and the schema is immutable
// from then on.
TEST_F(StoreTest, SchemaIsFrozenAndClosurePrecomputed) {
  EXPECT_TRUE(store.schema().frozen());
  const auto& named = store.schema().subclasses_of("Named");
  EXPECT_EQ(named, (std::vector<std::string>{"Cell", "Named"}));
  const auto& cell = store.schema().subclasses_of("Cell");
  EXPECT_EQ(cell, (std::vector<std::string>{"Cell"}));
  EXPECT_TRUE(store.schema().subclasses_of("NoSuchClass").empty());
  // a copy inherits frozenness: no post-construction mutations anywhere
  Schema copy = store.schema();
  EXPECT_EQ(copy.define_class({"Late", "", {}}).code(), Errc::invalid_argument);
  EXPECT_EQ(copy.define_relation({"late", "Cell", "Cell", Cardinality::many_to_many}).code(),
            Errc::invalid_argument);
  // a standalone (unfrozen) schema still accepts definitions
  Schema fresh = test_schema();
  EXPECT_FALSE(fresh.frozen());
  EXPECT_TRUE(fresh.define_class({"Extra", "Named", {}}).ok());
}

// The indexes_off ablation must answer every query identically.
TEST_F(StoreTest, AblationStoreAnswersIdentically) {
  support::SimClock scan_clock;
  Store scan(test_schema(), &scan_clock, StoreOptions{.secondary_indexes = false});
  for (Store* s : {&store, &scan}) {
    auto a = *s->create("Cell");
    auto b = *s->create("Cell");
    auto v = *s->create("Version");
    ASSERT_TRUE(s->set(a, "name", AttrValue(std::string("alu"))).ok());
    ASSERT_TRUE(s->set(b, "name", AttrValue(std::string("alu"))).ok());
    ASSERT_TRUE(s->link("has_version", a, v).ok());
  }
  EXPECT_EQ(store.objects_of("Named"), scan.objects_of("Named"));
  EXPECT_EQ(store.find("Cell", "name", AttrValue(std::string("alu"))),
            scan.find("Cell", "name", AttrValue(std::string("alu"))));
  EXPECT_EQ(store.find_one("Named", "name", AttrValue(std::string("alu"))),
            scan.find_one("Named", "name", AttrValue(std::string("alu"))));
  EXPECT_EQ(store.find_one("Cell", "name", AttrValue(std::string("zz"))),
            scan.find_one("Cell", "name", AttrValue(std::string("zz"))));
  EXPECT_TRUE(scan.linked("has_version", scan.objects_of("Cell")[0],
                          scan.objects_of("Version")[0]));
}

// find_one must return the *smallest* matching id (find().front()),
// also when matches straddle base and derived classes.
TEST_F(StoreTest, FindOneReturnsSmallestIdAcrossSubclasses) {
  auto c1 = *store.create("Cell");
  auto c2 = *store.create("Cell");
  ASSERT_TRUE(store.set(c1, "name", AttrValue(std::string("dup"))).ok());
  ASSERT_TRUE(store.set(c2, "name", AttrValue(std::string("dup"))).ok());
  EXPECT_EQ(store.find_one("Named", "name", AttrValue(std::string("dup"))), c1);
  ASSERT_TRUE(store.destroy(c1).ok());
  EXPECT_EQ(store.find_one("Named", "name", AttrValue(std::string("dup"))), c2);
  // overwriting the attribute moves the object between value buckets
  ASSERT_TRUE(store.set(c2, "name", AttrValue(std::string("renamed"))).ok());
  EXPECT_FALSE(store.find_one("Named", "name", AttrValue(std::string("dup"))).has_value());
  EXPECT_EQ(store.find_one("Named", "name", AttrValue(std::string("renamed"))), c2);
}

}  // namespace
}  // namespace jfm::oms
