// COW ablation contract at the coupling layer (docs/vfs-cow.md): a
// hybrid world with cow_extents on and one with it off, driven by the
// SAME randomized transfer workload, must end bit-identical -- same
// tree contents, same content hashes, same logical transfer
// accounting. Only the physical counters may differ (and must: a cold
// COW checkout moves zero physical payload bytes). Plus: pre-image
// journals built on shared extents survive fault-injected rollbacks.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "jfm/coupling/hybrid.hpp"
#include "jfm/support/faultsim.hpp"
#include "test_seed.hpp"

namespace jfm::coupling {
namespace {

namespace faultsim = support::faultsim;

std::vector<ToolCommand> schematic(std::uint32_t salt) {
  std::vector<ToolCommand> cmds = {
      {"add-port", {"a", "in"}},
      {"add-port", {"y", "out"}},
      {"add-prim", {"g" + std::to_string(salt % 97), "NOT"}},
      {"connect", {"a", "g" + std::to_string(salt % 97), "a"}},
      {"connect", {"y", "g" + std::to_string(salt % 97), "y"}},
  };
  return cmds;
}

/// A re-edit of an existing schematic: adds a fresh net. `step` keeps
/// names unique within one workload run (the tool rejects duplicates);
/// `salt` varies the payload across seeds.
std::vector<ToolCommand> edit(int step, std::uint32_t salt) {
  return {{"add-net", {"n" + std::to_string(step) + "_" + std::to_string(salt % 1000)}}};
}

/// root-relative path -> (content, fnv1a hash) for every file under
/// `root`. Comparing these across worlds is the bit-identical check.
std::map<std::string, std::pair<std::string, std::uint64_t>> tree_fingerprint(
    vfs::FileSystem& fs, const vfs::Path& root) {
  std::map<std::string, std::pair<std::string, std::uint64_t>> out;
  if (!fs.exists(root)) return out;
  auto files = fs.walk_files(root);
  if (!files.ok()) return out;
  const std::string prefix = root.is_root() ? "/" : root.str() + "/";
  for (const auto& file : *files) {
    auto content = fs.read_file(file);
    auto hash = fs.content_hash(file);
    if (!content.ok() || !hash.ok()) continue;
    out.emplace(file.str().substr(prefix.size()), std::make_pair(*content, *hash));
  }
  return out;
}

const char* kCells[] = {"top", "alu", "regfile"};

struct World {
  std::unique_ptr<HybridFramework> hybrid;
  jcf::UserRef alice;
};

World build_world(bool cow_on) {
  World w;
  HybridConfig config;
  config.cow_extents = cow_on;
  w.hybrid = std::make_unique<HybridFramework>(config);
  EXPECT_TRUE(w.hybrid->bootstrap().ok());
  w.alice = *w.hybrid->add_designer("alice");
  EXPECT_TRUE(w.hybrid->create_project("p").ok());
  for (const char* cell : kCells) {
    EXPECT_TRUE(w.hybrid->create_cell("p", cell, w.alice).ok());
    EXPECT_TRUE(w.hybrid->reserve_cell("p", cell, w.alice).ok());
    auto run = w.hybrid->run_activity("p", cell, "enter_schematic", w.alice, schematic(0));
    EXPECT_TRUE(run.ok()) << run.error().to_text();
  }
  EXPECT_TRUE(w.hybrid->declare_child("p", "top", "alu").ok());
  EXPECT_TRUE(w.hybrid->declare_child("p", "top", "regfile").ok());
  return w;
}

/// Drive one world through a seed-determined mix of re-edits and
/// checkouts. Every decision comes from the generator, so two worlds
/// fed the same seed execute the same workload.
void run_workload(World& w, std::uint32_t seed) {
  std::mt19937 rng(seed);
  for (int step = 0; step < 24; ++step) {
    const std::uint32_t roll = rng();
    const char* cell = kCells[roll % 3];
    switch (roll % 4) {
      case 0: {  // re-edit a cell: import path, publishes a new DOV
        auto run = w.hybrid->run_activity("p", cell, "enter_schematic", w.alice,
                                          edit(step, rng()));
        ASSERT_TRUE(run.ok()) << run.error().to_text();
        break;
      }
      case 1:    // cold or warm checkout of the whole hierarchy
      case 2: {
        auto dst = vfs::Path().child("scratch").child("co" + std::to_string(roll % 5));
        auto report = w.hybrid->checkout_hierarchy("p", "top", w.alice, dst);
        ASSERT_TRUE(report.ok()) << report.error().to_text();
        ASSERT_TRUE(report->failures.empty());
        break;
      }
      default: {  // plain fs-level copy of a previous checkout, if any
        auto src = vfs::Path().child("scratch").child("co" + std::to_string(rng() % 5));
        auto dst = vfs::Path().child("scratch").child("mirror" + std::to_string(rng() % 3));
        auto& fs = w.hybrid->fs();
        if (fs.exists(src)) {
          if (fs.exists(dst)) {
            ASSERT_TRUE(fs.remove(dst, /*recursive=*/true).ok());
          }
          ASSERT_TRUE(fs.copy_tree(src, dst).ok());
        }
        break;
      }
    }
  }
}

class CowAblationProperty : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  void TearDown() override { faultsim::Injector::global().disarm(); }
};

TEST_P(CowAblationProperty, BothModesEndBitIdenticalUnderRandomWorkload) {
  const std::uint32_t seed = GetParam();

  World cow = build_world(/*cow_on=*/true);
  World raw = build_world(/*cow_on=*/false);
  run_workload(cow, seed);
  run_workload(raw, seed);

  // Bit-identical trees, including the memoized content hashes.
  auto cow_tree = tree_fingerprint(cow.hybrid->fs(), vfs::Path());
  auto raw_tree = tree_fingerprint(raw.hybrid->fs(), vfs::Path());
  EXPECT_FALSE(cow_tree.empty());
  EXPECT_EQ(cow_tree, raw_tree) << "seed " << seed;

  // Identical logical accounting at every layer...
  auto cow_io = cow.hybrid->fs().counters();
  auto raw_io = raw.hybrid->fs().counters();
  EXPECT_EQ(cow_io.bytes_written, raw_io.bytes_written);
  EXPECT_EQ(cow_io.bytes_copied, raw_io.bytes_copied);
  EXPECT_EQ(cow_io.files_copied, raw_io.files_copied);
  EXPECT_EQ(cow.hybrid->fs().used_bytes(), raw.hybrid->fs().used_bytes());
  auto cow_xfer = cow.hybrid->transfer().stats_snapshot();
  auto raw_xfer = raw.hybrid->transfer().stats_snapshot();
  EXPECT_EQ(cow_xfer.exports, raw_xfer.exports);
  EXPECT_EQ(cow_xfer.bytes_exported, raw_xfer.bytes_exported);
  EXPECT_EQ(cow_xfer.imports, raw_xfer.imports);
  EXPECT_EQ(cow_xfer.bytes_imported, raw_xfer.bytes_imported);

  // ...but physically the COW world never duplicated a copied byte,
  // while the ablation duplicated every one of them.
  EXPECT_EQ(cow_io.bytes_physical_copied, 0u);
  EXPECT_EQ(raw_io.bytes_physical_copied, raw_io.bytes_copied);
  EXPECT_EQ(cow_xfer.bytes_exported_physical, 0u);
  EXPECT_GE(raw_xfer.bytes_exported_physical, raw_xfer.bytes_exported);
  auto cow_stats = cow.hybrid->fs().cow_snapshot();
  auto raw_stats = raw.hybrid->fs().cow_snapshot();
  EXPECT_GT(cow_stats.shared_copies, 0u);
  EXPECT_EQ(raw_stats.shared_copies, 0u);
  EXPECT_LE(cow_stats.physical_bytes, cow_stats.logical_bytes);
  EXPECT_EQ(raw_stats.physical_bytes, raw_stats.logical_bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CowAblationProperty,
                         ::testing::ValuesIn(jfm::testing::test_seeds(
                             "cow-ablation", {7u, 23u, 0xC0FFEEu, 0xD15EA5Eu})));

// ---------------------------------------------------------------------------
// Rollback with shared pre-images: after a cold checkout, destination
// files SHARE extents with the OMS store's payloads. A later faulty
// re-checkout journals those shared extents as pre-images; a failed
// attempt must restore the destination bit-exactly even though the
// journal never copied a byte.

class CowRollbackProperty : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  void TearDown() override { faultsim::Injector::global().disarm(); }
};

TEST_P(CowRollbackProperty, SharedExtentJournalRollsBackBitExactly) {
  const std::uint32_t seed = GetParam();

  World w = build_world(/*cow_on=*/true);
  auto& fs = w.hybrid->fs();
  const auto dst = vfs::Path().child("scratch").child("work");

  // Cold checkout: dst now shares extents with the store's payloads.
  auto cold = w.hybrid->checkout_hierarchy("p", "top", w.alice, dst);
  ASSERT_TRUE(cold.ok()) << cold.error().to_text();
  ASSERT_TRUE(cold->failures.empty());
  ASSERT_GT(fs.cow_snapshot().live_shared_extents, 0u);
  const auto before = tree_fingerprint(fs, dst);
  ASSERT_EQ(before.size(), 3u);

  // New versions of every cell, so a re-checkout overwrites all three
  // files and must journal their (shared) pre-images.
  int step = 0;
  for (const char* cell : kCells) {
    auto run = w.hybrid->run_activity("p", cell, "enter_schematic", w.alice, edit(step++, seed));
    ASSERT_TRUE(run.ok()) << run.error().to_text();
  }

  // Oracle for the converged end state, computed fault-free elsewhere.
  const auto oracle_dst = vfs::Path().child("scratch").child("oracle");
  auto oracle = w.hybrid->checkout_hierarchy("p", "top", w.alice, oracle_dst);
  ASSERT_TRUE(oracle.ok());
  ASSERT_TRUE(oracle->failures.empty());
  const auto want = tree_fingerprint(fs, oracle_dst);

  auto plan = faultsim::parse_plan("seed=" + std::to_string(seed) +
                                   ";transfer.export_item=0.25;vfs.write=0.25;vfs.copy=0.25");
  ASSERT_TRUE(plan.ok());
  faultsim::Injector::global().arm(std::move(*plan));

  bool converged = false;
  for (int attempt = 0; attempt < 12 && !converged; ++attempt) {
    auto report = w.hybrid->checkout_hierarchy("p", "top", w.alice, dst);
    // The plan leaves vfs.read unarmed, so fingerprinting mid-run is
    // side-effect free: no matched site draws an ordinal for it.
    if (!report.ok()) {
      // Failed before mutating anything: dst must still be pre-state.
      EXPECT_EQ(tree_fingerprint(fs, dst), before) << "seed " << seed;
      continue;
    }
    if (report->failures.empty()) {
      converged = true;
    } else {
      EXPECT_TRUE(report->rolled_back);
      // The rollback wrote the journaled shared extents back: the
      // destination is bit-identical to its pre-checkout state.
      EXPECT_EQ(tree_fingerprint(fs, dst), before) << "seed " << seed;
    }
  }
  faultsim::Injector::global().disarm();
  ASSERT_TRUE(converged) << "seed " << seed;
  EXPECT_EQ(tree_fingerprint(fs, dst), want) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CowRollbackProperty,
                         ::testing::ValuesIn(jfm::testing::test_seeds(
                             "cow-rollback", {11u, 0xABCDu})));

}  // namespace
}  // namespace jfm::coupling
