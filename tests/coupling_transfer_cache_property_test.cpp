// Property test: the content-addressed transfer cache never serves
// stale bytes. Randomized interleavings of export_dov / import_file
// over many design objects; after any import that creates a new
// version, the next export of that design object's latest version must
// equal the imported payload byte-for-byte, and exports of OLD versions
// must still reproduce exactly the bytes that version was created with.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "jfm/coupling/transfer.hpp"
#include "jfm/support/rng.hpp"
#include "test_seed.hpp"

namespace jfm::coupling {
namespace {

class TransferCachePropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    ASSERT_TRUE(fs.mkdirs(vfs::Path().child("out")).ok());
    user = *jcf.create_user("alice");
    auto team = *jcf.create_team("rtl");
    ASSERT_TRUE(jcf.add_member(team, user).ok());
    auto tool = *jcf.register_tool("t");
    auto made = *jcf.create_viewtype("made");  // activities must create a viewtype
    auto act = *jcf.create_activity("a", tool, {}, {made});
    auto flow = *jcf.create_flow("f", {act});
    ASSERT_TRUE(jcf.freeze_flow(flow).ok());
    auto project = *jcf.create_project("p", team);
    auto cell = *jcf.create_cell(project, "c", flow, team);
    auto cv = *jcf.create_cell_version(cell, user);
    ASSERT_TRUE(jcf.reserve(cv, user).ok());
    auto variant = *jcf.create_variant(cv, "work", user);
    for (int i = 0; i < kObjects; ++i) {
      auto vt = *jcf.create_viewtype("view" + std::to_string(i));
      dobjs.push_back(*jcf.create_design_object(variant, "do" + std::to_string(i), vt, user));
    }
  }

  // Small alphabet + small length pool: identical payloads (and thus
  // identical content hashes) across versions and design objects are
  // common, which is exactly where a buggy cache would confuse entries.
  std::string random_payload(support::Rng& rng) {
    const std::size_t len = 1 + rng.below(64) * (1 + rng.below(32));
    std::string payload(len, '\0');
    for (auto& c : payload) c = static_cast<char>('a' + rng.below(3));
    return payload;
  }

  static constexpr int kObjects = 8;
  support::SimClock clock;
  vfs::FileSystem fs{&clock};
  jcf::JcfFramework jcf{&clock};
  jcf::UserRef user;
  std::vector<jcf::DesignObjectRef> dobjs;
};

TEST_P(TransferCachePropertyTest, RandomInterleavingsNeverServeStaleBytes) {
  support::Rng rng(GetParam());
  TransferOptions options;
  options.copy_through_filesystem = true;
  options.content_addressed_cache = true;
  options.cache_capacity = 8;  // tight: force evictions mid-run
  TransferEngine engine(&jcf, &fs, vfs::Path().child("xfer"), options);

  // Model state, maintained independently of the engine.
  std::map<int, std::string> latest;                         // dobj index -> payload
  std::vector<std::pair<jcf::DovRef, std::string>> history;  // every version ever made
  const auto out = vfs::Path().child("out");

  for (int step = 0; step < 400; ++step) {
    const int which = static_cast<int>(rng.below(kObjects));
    // A handful of shared destinations, so different design objects
    // overwrite each other's materializations (the overwrite-detection
    // path) as well as their own.
    const vfs::Path dst = out.child("dst" + std::to_string(rng.below(5)));
    const double dice = rng.uniform();
    if (dice < 0.4 || !latest.contains(which)) {
      // import a fresh payload as a new version
      const std::string payload = random_payload(rng);
      const vfs::Path src = out.child("src");
      ASSERT_TRUE(fs.write_file(src, payload).ok());
      auto dov = engine.import_file(src, dobjs[which], user);
      ASSERT_TRUE(dov.ok()) << "step " << step;
      latest[which] = payload;
      history.emplace_back(*dov, payload);
    } else if (dice < 0.85) {
      // export the latest version: must match the last import exactly
      auto dov = jcf.latest_dov(dobjs[which]);
      ASSERT_TRUE(dov.ok());
      ASSERT_TRUE(engine.export_dov(*dov, user, dst).ok()) << "step " << step;
      EXPECT_EQ(*fs.read_file(dst), latest[which]) << "stale bytes at step " << step;
    } else {
      // export a random historical version: old versions are immutable
      const auto& [dov, payload] = history[rng.below(history.size())];
      ASSERT_TRUE(engine.export_dov(dov, user, dst).ok()) << "step " << step;
      EXPECT_EQ(*fs.read_file(dst), payload) << "stale bytes at step " << step;
    }
  }

  const auto stats = engine.stats_snapshot();
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.exports);
  EXPECT_GT(stats.cache_hits, 0u) << "workload never hit the cache; property vacuous";
  EXPECT_GT(stats.cache_invalidations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransferCachePropertyTest,
                         ::testing::ValuesIn(jfm::testing::test_seeds<std::uint64_t>(
                             "transfer-cache", {1u, 2u, 3u, 0xDA7Eu, 0xC0FFEEu})));

}  // namespace
}  // namespace jfm::coupling
