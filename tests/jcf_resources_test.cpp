// JCF resources: users, teams, tools, viewtypes, activities and frozen
// flows (the metadata the framework administrator defines in advance,
// paper s2.1).

#include <gtest/gtest.h>

#include "jfm/jcf/framework.hpp"

namespace jfm::jcf {
namespace {

using support::Errc;

class ResourcesTest : public ::testing::Test {
 protected:
  support::SimClock clock;
  JcfFramework jcf{&clock};
};

TEST_F(ResourcesTest, UsersAndTeams) {
  auto alice = jcf.create_user("alice");
  ASSERT_TRUE(alice.ok());
  EXPECT_EQ(jcf.create_user("alice").code(), Errc::already_exists);
  EXPECT_EQ(jcf.create_user("").code(), Errc::invalid_argument);
  auto team = jcf.create_team("rtl");
  ASSERT_TRUE(team.ok());
  ASSERT_TRUE(jcf.add_member(*team, *alice).ok());
  EXPECT_TRUE(*jcf.is_member(*team, *alice));
  auto bob = jcf.create_user("bob");
  EXPECT_FALSE(*jcf.is_member(*team, *bob));
  // name lookups
  EXPECT_EQ(*jcf.find_user("alice"), *alice);
  EXPECT_EQ(jcf.find_user("ghost").code(), Errc::not_found);
  EXPECT_EQ(*jcf.name_of(*alice), "alice");
}

TEST_F(ResourcesTest, RefTypeMismatchCaught) {
  auto alice = jcf.create_user("alice");
  auto team = jcf.create_team("rtl");
  ASSERT_TRUE(alice.ok() && team.ok());
  // a user handle where a team is expected
  TeamRef fake_team(alice->id);
  auto st = jcf.add_member(fake_team, *alice);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, Errc::invalid_argument);
  // dangling
  auto st2 = jcf.add_member(TeamRef(oms::ObjectId(9999)), *alice);
  EXPECT_EQ(st2.error().code, Errc::not_found);
}

TEST_F(ResourcesTest, ActivitiesCarryNeedsAndCreates) {
  auto tool = jcf.register_tool("sim");
  auto sch = jcf.create_viewtype("schematic");
  auto res = jcf.create_viewtype("results");
  ASSERT_TRUE(tool.ok() && sch.ok() && res.ok());
  auto act = jcf.create_activity("simulate", *tool, {*sch}, {*res});
  ASSERT_TRUE(act.ok());
  auto needs = jcf.activity_needs(*act);
  ASSERT_TRUE(needs.ok());
  ASSERT_EQ(needs->size(), 1u);
  EXPECT_EQ((*needs)[0], *sch);
  auto creates = jcf.activity_creates(*act);
  ASSERT_TRUE(creates.ok());
  EXPECT_EQ((*creates)[0], *res);
  EXPECT_EQ(*jcf.activity_tool(*act), *tool);
  // an activity must create something
  EXPECT_EQ(jcf.create_activity("noop", *tool, {}, {}).code(), Errc::invalid_argument);
}

class FlowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tool = *jcf.register_tool("t");
    vt = *jcf.create_viewtype("v");
    a = *jcf.create_activity("a", tool, {}, {vt});
    b = *jcf.create_activity("b", tool, {}, {vt});
    c = *jcf.create_activity("c", tool, {}, {vt});
  }
  support::SimClock clock;
  JcfFramework jcf{&clock};
  ToolRef tool;
  ViewTypeRef vt;
  ActivityRef a, b, c;
};

TEST_F(FlowTest, CreateAndFreeze) {
  auto flow = jcf.create_flow("f", {a, b, c});
  ASSERT_TRUE(flow.ok());
  EXPECT_FALSE(*jcf.flow_frozen(*flow));
  ASSERT_TRUE(jcf.add_precedence(*flow, a, b).ok());
  ASSERT_TRUE(jcf.add_precedence(*flow, b, c).ok());
  ASSERT_TRUE(jcf.freeze_flow(*flow).ok());
  EXPECT_TRUE(*jcf.flow_frozen(*flow));
  // frozen flows cannot be modified (s2.1: "Flows are fixed")
  EXPECT_EQ(jcf.add_precedence(*flow, a, c).code(), Errc::permission_denied);
  auto preds = jcf.predecessors(*flow, c);
  ASSERT_TRUE(preds.ok());
  ASSERT_EQ(preds->size(), 1u);
  EXPECT_EQ((*preds)[0], b);
  EXPECT_TRUE(jcf.predecessors(*flow, a)->empty());
  auto acts = jcf.flow_activities(*flow);
  ASSERT_TRUE(acts.ok());
  EXPECT_EQ(acts->size(), 3u);
}

TEST_F(FlowTest, CyclicPrecedenceRejectedAtFreeze) {
  auto flow = jcf.create_flow("f", {a, b});
  ASSERT_TRUE(flow.ok());
  ASSERT_TRUE(jcf.add_precedence(*flow, a, b).ok());
  ASSERT_TRUE(jcf.add_precedence(*flow, b, a).ok());
  auto st = jcf.freeze_flow(*flow);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, Errc::consistency_violation);
}

TEST_F(FlowTest, PrecedenceValidation) {
  auto flow = jcf.create_flow("f", {a, b});
  ASSERT_TRUE(flow.ok());
  EXPECT_EQ(jcf.add_precedence(*flow, a, a).code(), Errc::invalid_argument);
  EXPECT_EQ(jcf.add_precedence(*flow, a, c).code(), Errc::invalid_argument);  // c not in flow
  EXPECT_EQ(jcf.create_flow("empty", {}).code(), Errc::invalid_argument);
  EXPECT_EQ(jcf.create_flow("dup", {a, a}).code(), Errc::already_exists);
}

TEST_F(FlowTest, DiamondFlowFreezes) {
  auto d = *jcf.create_activity("d", tool, {}, {vt});
  auto flow = jcf.create_flow("diamond", {a, b, c, d});
  ASSERT_TRUE(flow.ok());
  ASSERT_TRUE(jcf.add_precedence(*flow, a, b).ok());
  ASSERT_TRUE(jcf.add_precedence(*flow, a, c).ok());
  ASSERT_TRUE(jcf.add_precedence(*flow, b, d).ok());
  ASSERT_TRUE(jcf.add_precedence(*flow, c, d).ok());
  EXPECT_TRUE(jcf.freeze_flow(*flow).ok());
  EXPECT_EQ(jcf.predecessors(*flow, d)->size(), 2u);
}

}  // namespace
}  // namespace jfm::jcf
