// Analysis utilities: static timing (critical path) and LVS-lite.

#include <gtest/gtest.h>

#include "jfm/tools/lvs.hpp"
#include "jfm/tools/timing.hpp"

namespace jfm::tools {
namespace {

using support::Errc;

// ---------------- timing ------------------------------------------------

TEST(Timing, ChainDelayAccumulates) {
  Circuit c;
  int in = c.add_signal("in");
  int prev = in;
  for (int i = 0; i < 4; ++i) {
    int out = c.add_signal("s" + std::to_string(i));
    c.gates.push_back({"NOT", {prev}, out, static_cast<SimTime>(i + 1)});  // delays 1..4
    prev = out;
  }
  auto report = analyze_timing(c);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->critical_delay, 1u + 2 + 3 + 4);
  ASSERT_EQ(report->critical_path.size(), 5u);
  EXPECT_EQ(report->critical_path.front(), in);
  EXPECT_EQ(report->critical_path.back(), prev);
  EXPECT_NE(report->describe(c).find("(delay 10)"), std::string::npos);
}

TEST(Timing, PicksTheSlowerBranch) {
  // in splits into a fast buffer (1) and a slow 3-stage chain (3+3+3),
  // converging on an AND
  Circuit c;
  int in = c.add_signal("in");
  int fast = c.add_signal("fast");
  c.gates.push_back({"BUF", {in}, fast, 1});
  int prev = in;
  for (int i = 0; i < 3; ++i) {
    int out = c.add_signal("slow" + std::to_string(i));
    c.gates.push_back({"NOT", {prev}, out, 3});
    prev = out;
  }
  int y = c.add_signal("y");
  c.gates.push_back({"AND", {fast, prev}, y, 2});
  auto report = analyze_timing(c);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->critical_delay, 9u + 2);
  // the path goes through the slow branch
  bool through_slow = false;
  for (int s : report->critical_path) {
    if (c.signal_names[static_cast<std::size_t>(s)] == "slow1") through_slow = true;
  }
  EXPECT_TRUE(through_slow);
}

TEST(Timing, DffCutsPaths) {
  // in -(2)-> d -[DFF]-> q -(5)-> y : two separate cones, max is 5
  Circuit c;
  int in = c.add_signal("in");
  int d = c.add_signal("d");
  int clk = c.add_signal("clk");
  int q = c.add_signal("q");
  int y = c.add_signal("y");
  c.gates.push_back({"BUF", {in}, d, 2});
  c.gates.push_back({"DFF", {d, clk}, q, 1});
  c.gates.push_back({"NOT", {q}, y, 5});
  auto report = analyze_timing(c);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->critical_delay, 5u);
  EXPECT_EQ(report->arrival[static_cast<std::size_t>(d)], 2u);
  EXPECT_EQ(report->arrival[static_cast<std::size_t>(q)], 0u);  // launch point
}

TEST(Timing, SequentialLoopIsFine) {
  // q feeds back to d through an inverter: legal (the DFF cuts it)
  Circuit c;
  int d = c.add_signal("d");
  int clk = c.add_signal("clk");
  int q = c.add_signal("q");
  c.gates.push_back({"DFF", {d, clk}, q, 1});
  c.gates.push_back({"NOT", {q}, d, 4});
  auto report = analyze_timing(c);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->critical_delay, 4u);
}

TEST(Timing, CombinationalCycleRejected) {
  Circuit c;
  int a = c.add_signal("a");
  int b = c.add_signal("b");
  c.gates.push_back({"NOT", {a}, b, 1});
  c.gates.push_back({"NOT", {b}, a, 1});
  auto report = analyze_timing(c);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, Errc::consistency_violation);
}

TEST(Timing, EmptyCircuit) {
  Circuit c;
  (void)c.add_signal("lonely");
  auto report = analyze_timing(c);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->critical_delay, 0u);
  EXPECT_TRUE(report->critical_path.empty());
}

// ---------------- LVS ------------------------------------------------------

Schematic lvs_schematic() {
  Schematic sch;
  sch.ports = {{"a", PortDir::in}, {"y", PortDir::out}};
  sch.nets = {"a", "y", "mid"};
  sch.primitives = {{"g", "BUF"}};
  sch.instances = {{"u0", "adder", "schematic"}, {"u1", "adder", "schematic"}};
  sch.connections = {{"a", "g", "a"}, {"mid", "g", "y"}};
  return sch;
}

Layout lvs_layout() {
  Layout lay;
  lay.layers = {"m1"};
  lay.rects = {{"m1", 0, 0, 10, 10, "a"},
               {"m1", 20, 0, 30, 10, "y"},
               {"m1", 40, 0, 50, 10, "mid"}};
  lay.placements = {{"i0", "adder", "layout", 0, 0}, {"i1", "adder", "layout", 100, 0}};
  return lay;
}

TEST(Lvs, CleanWhenViewsAgree) {
  auto report = lvs_compare(lvs_schematic(), lvs_layout());
  EXPECT_TRUE(report.clean()) << report.describe()[0];
  EXPECT_EQ(report.violation_count(), 0u);
}

TEST(Lvs, MissingNetAndExtraLabel) {
  Layout lay = lvs_layout();
  lay.rects[2].net = "typo_net";  // mid lost, typo introduced
  auto report = lvs_compare(lvs_schematic(), lay);
  EXPECT_FALSE(report.clean());
  ASSERT_EQ(report.nets_missing_in_layout.size(), 1u);
  EXPECT_EQ(report.nets_missing_in_layout[0], "mid");
  ASSERT_EQ(report.nets_unknown_to_schematic.size(), 1u);
  EXPECT_EQ(report.nets_unknown_to_schematic[0], "typo_net");
  EXPECT_EQ(report.violation_count(), 2u);
  EXPECT_EQ(report.describe().size(), 2u);
}

TEST(Lvs, InstanceCountsAreCompared) {
  Layout lay = lvs_layout();
  lay.placements.pop_back();  // only one adder placed
  auto report = lvs_compare(lvs_schematic(), lay);
  ASSERT_EQ(report.instances_missing_in_layout.size(), 1u);
  EXPECT_EQ(report.instances_missing_in_layout[0], "adder");
  // an extra foreign placement is flagged the other way
  lay.placements.push_back({"ix", "rogue", "layout", 0, 0});
  report = lvs_compare(lvs_schematic(), lay);
  ASSERT_EQ(report.placements_unknown_to_schematic.size(), 1u);
  EXPECT_EQ(report.placements_unknown_to_schematic[0], "rogue");
}

TEST(Lvs, UnlabeledGeometryIgnored) {
  Layout lay = lvs_layout();
  lay.rects.push_back({"m1", 60, 0, 70, 10, ""});  // filler, no net
  EXPECT_TRUE(lvs_compare(lvs_schematic(), lay).clean());
}

}  // namespace
}  // namespace jfm::tools
