// The .meta file format: the single metadata file per library (s2.2).

#include <gtest/gtest.h>

#include "jfm/fmcad/meta.hpp"
#include "jfm/support/rng.hpp"

namespace jfm::fmcad {
namespace {

using support::Errc;

LibraryMeta sample_meta() {
  LibraryMeta meta;
  meta.library = "mylib";
  meta.generation = 7;
  meta.views = {{"schematic", "schematic"}, {"layout", "layout"}, {"sym", "symbol"}};
  meta.cells = {"alu", "rom"};
  CellViewKey key{"alu", "schematic"};
  auto& record = meta.cellviews[key];
  record.key = key;
  record.versions = {{1, "v1.cv", 100, "alice"}, {2, "v2.cv", 200, "bob"}};
  record.checkout = CheckOutStatus{"carol", 2, "work_carol.cv"};
  meta.configs["golden"].name = "golden";
  meta.configs["golden"].members[key] = 1;
  return meta;
}

TEST(Meta, Lookups) {
  LibraryMeta meta = sample_meta();
  EXPECT_TRUE(meta.has_cell("alu"));
  EXPECT_FALSE(meta.has_cell("nope"));
  ASSERT_NE(meta.find_view("layout"), nullptr);
  EXPECT_EQ(meta.find_view("layout")->viewtype, "layout");
  EXPECT_EQ(meta.find_view("nope"), nullptr);
  ASSERT_NE(meta.find_cellview({"alu", "schematic"}), nullptr);
  EXPECT_EQ(meta.find_cellview({"alu", "layout"}), nullptr);
  ASSERT_NE(meta.find_config("golden"), nullptr);
  EXPECT_EQ(meta.find_config("none"), nullptr);
}

TEST(Meta, VersionAccessors) {
  LibraryMeta meta = sample_meta();
  const CellViewRecord* record = meta.find_cellview({"alu", "schematic"});
  ASSERT_NE(record, nullptr);
  ASSERT_NE(record->default_version(), nullptr);
  EXPECT_EQ(record->default_version()->number, 2);  // latest by default
  ASSERT_NE(record->version(1), nullptr);
  EXPECT_EQ(record->version(1)->author, "alice");
  EXPECT_EQ(record->version(9), nullptr);
}

TEST(Meta, SerializeParseRoundTrip) {
  LibraryMeta meta = sample_meta();
  auto parsed = LibraryMeta::parse(meta.serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_text();
  EXPECT_EQ(parsed->library, "mylib");
  EXPECT_EQ(parsed->generation, 7u);
  EXPECT_EQ(parsed->cells, meta.cells);
  ASSERT_EQ(parsed->views.size(), 3u);
  const CellViewRecord* record = parsed->find_cellview({"alu", "schematic"});
  ASSERT_NE(record, nullptr);
  ASSERT_EQ(record->versions.size(), 2u);
  EXPECT_EQ(record->versions[1].mtime, 200u);
  ASSERT_TRUE(record->checkout.has_value());
  EXPECT_EQ(record->checkout->user, "carol");
  EXPECT_EQ(record->checkout->base_version, 2);
  EXPECT_EQ(parsed->configs.at("golden").members.at({"alu", "schematic"}), 1);
  // canonical
  EXPECT_EQ(parsed->serialize(), meta.serialize());
}

TEST(Meta, ParseRejectsGarbage) {
  EXPECT_EQ(LibraryMeta::parse("nope").code(), Errc::parse_error);
  EXPECT_EQ(LibraryMeta::parse("fmcadmeta 1\n").code(), Errc::parse_error);  // no end
  EXPECT_EQ(LibraryMeta::parse("fmcadmeta 1\nversion a b 1 f 0 u\nend\n").code(),
            Errc::parse_error);  // version before cellview
  EXPECT_EQ(LibraryMeta::parse("fmcadmeta 1\nmember cfg a b 1\nend\n").code(),
            Errc::parse_error);  // member before config
  EXPECT_EQ(LibraryMeta::parse("fmcadmeta 1\nwat\nend\n").code(), Errc::parse_error);
  EXPECT_EQ(LibraryMeta::parse("fmcadmeta 1\nend\nextra\n").code(), Errc::parse_error);
}

// property: randomized metas survive the round trip bit-exactly
struct MetaRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetaRoundTrip, Random) {
  support::Rng rng(GetParam());
  LibraryMeta meta;
  meta.library = rng.identifier(8);
  meta.generation = rng.below(1000);
  const int n_views = static_cast<int>(rng.range(1, 4));
  for (int v = 0; v < n_views; ++v) {
    meta.views.push_back({"view" + std::to_string(v), rng.identifier(5)});
  }
  const int n_cells = static_cast<int>(rng.range(1, 6));
  for (int c = 0; c < n_cells; ++c) {
    const std::string cell = "cell" + std::to_string(c);
    meta.cells.push_back(cell);
    for (int v = 0; v < n_views; ++v) {
      if (rng.chance(0.5)) continue;
      CellViewKey key{cell, "view" + std::to_string(v)};
      auto& record = meta.cellviews[key];
      record.key = key;
      const int n_versions = static_cast<int>(rng.range(0, 4));
      for (int k = 1; k <= n_versions; ++k) {
        record.versions.push_back(
            {k, "v" + std::to_string(k) + ".cv", rng.below(10'000), rng.identifier(4)});
      }
      if (!record.versions.empty() && rng.chance(0.3)) {
        record.checkout = CheckOutStatus{rng.identifier(5),
                                         record.versions.back().number, "work.cv"};
      }
    }
  }
  auto parsed = LibraryMeta::parse(meta.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->serialize(), meta.serialize());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetaRoundTrip, ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace jfm::fmcad
