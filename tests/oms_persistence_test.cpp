// Durability contract (docs/persistence.md): a Store attached to a
// journal directory recovers BIT-IDENTICALLY from the latest valid
// snapshot plus the committed WAL tail -- objects, typed attributes,
// text fingerprints, link order in both directions, per-object
// modified stamps and the store epoch all reproduce through the
// public API. Crash semantics are committed-prefix: any torn or
// corrupt WAL suffix is discarded wholesale, never partially applied.
// The property test drives a seeded random workload, records a digest
// oracle at every commit sequence, then re-opens the store from every
// record boundary and from mid-record cuts and checks the recovered
// image against the oracle for exactly the surviving prefix.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "jfm/oms/store.hpp"
#include "jfm/oms/wal.hpp"
#include "jfm/support/faultsim.hpp"
#include "jfm/support/rng.hpp"
#include "jfm/vfs/filesystem.hpp"
#include "test_seed.hpp"

namespace jfm::oms {
namespace {

using support::Errc;

Schema persist_schema() {
  Schema schema;
  EXPECT_TRUE(schema
                  .define_class({"Node",
                                 "",
                                 {{"label", AttrType::text},
                                  {"weight", AttrType::integer},
                                  {"ratio", AttrType::real},
                                  {"flag", AttrType::boolean}}})
                  .ok());
  EXPECT_TRUE(schema.define_class({"Leaf", "Node", {}}).ok());
  EXPECT_TRUE(schema.define_relation({"edge", "Node", "Node", Cardinality::many_to_many}).ok());
  EXPECT_TRUE(schema.define_relation({"ref", "Node", "Node", Cardinality::many_to_many}).ok());
  return schema;
}

StoreOptions durable(std::size_t group = 1, std::uint64_t snapshot_every = 0) {
  StoreOptions opts;
  opts.durability = StoreOptions::Durability::wal;
  opts.wal_group_commit = group;
  opts.snapshot_every = snapshot_every;
  return opts;
}

std::string value_text(const AttrValue& value) {
  if (const auto* i = std::get_if<std::int64_t>(&value)) return "i:" + std::to_string(*i);
  if (const auto* d = std::get_if<double>(&value)) {
    std::ostringstream os;
    os.precision(17);
    os << "r:" << *d;
    return os.str();
  }
  if (const auto* b = std::get_if<bool>(&value)) return *b ? "b:true" : "b:false";
  return "t:" + std::get<std::string>(value);
}

// Everything recovery must restore, read back through the public API.
// Includes the epoch and per-object modified stamps, so replay must
// reproduce even the epoch gaps aborted transactions leave behind.
std::string digest(const Store& store) {
  std::string out = "epoch=" + std::to_string(store.epoch()) + "\n";
  std::map<std::uint64_t, std::uint64_t> modified;
  for (const auto& c : store.objects_changed_since("Node", 0)) modified[c.id.raw()] = c.modified;
  std::vector<ObjectId> ids = store.objects_of("Node");
  std::sort(ids.begin(), ids.end());
  for (ObjectId id : ids) {
    out += "object " + std::to_string(id.raw()) + ' ' + *store.class_of(id) + ' ' +
           std::to_string(store.created_at(id)) + " m=" + std::to_string(modified[id.raw()]) +
           '\n';
    for (const char* attr : {"label", "weight", "ratio", "flag"}) {
      auto v = store.get(id, attr);
      if (!v.ok()) continue;
      out += "  " + std::string(attr) + '=' + value_text(*v);
      if (auto fp = store.text_fingerprint(id, attr); fp.ok()) {
        out += " fp=" + std::to_string(fp->hash) + '/' + std::to_string(fp->size);
      }
      out += '\n';
    }
    for (const char* rel : {"edge", "ref"}) {
      // Order-sensitive in BOTH directions: link order is part of the
      // store contract the logical redo log preserves.
      if (auto tos = store.targets(rel, id); tos.ok() && !tos->empty()) {
        out += "  " + std::string(rel) + ">";
        for (ObjectId to : *tos) out += ' ' + std::to_string(to.raw());
        out += '\n';
      }
      if (auto froms = store.sources(rel, id); froms.ok() && !froms->empty()) {
        out += "  " + std::string(rel) + "<";
        for (ObjectId from : *froms) out += ' ' + std::to_string(from.raw());
        out += '\n';
      }
    }
  }
  return out;
}

vfs::Path journal_dir() { return vfs::Path().child("oms"); }

class PersistenceTest : public ::testing::Test {
 protected:
  void TearDown() override { support::faultsim::Injector::global().disarm(); }

  support::SimClock clock;
  vfs::FileSystem fs{&clock};
};

// Populate a small, representative image: every attribute type, text
// overwrites, links in a chosen order, an unlink, a destroy and an
// aborted transaction (for the epoch gap).
std::vector<ObjectId> populate(Store& store) {
  auto a = *store.create("Node");
  auto b = *store.create("Leaf");
  auto c = *store.create("Node");
  EXPECT_TRUE(store.set(a, "label", AttrValue(std::string("alpha"))).ok());
  EXPECT_TRUE(store.set(a, "weight", AttrValue(std::int64_t{42})).ok());
  EXPECT_TRUE(store.set(b, "ratio", AttrValue(0.375)).ok());
  EXPECT_TRUE(store.set(b, "flag", AttrValue(true)).ok());
  EXPECT_TRUE(store.set(a, "label", AttrValue(std::string("alpha-2"))).ok());
  EXPECT_TRUE(store.link("edge", a, c).ok());
  EXPECT_TRUE(store.link("edge", a, b).ok());  // order a->c before a->b
  EXPECT_TRUE(store.link("ref", b, a).ok());
  EXPECT_TRUE(store.unlink("edge", a, c).ok());
  auto d = *store.create("Node");
  EXPECT_TRUE(store.destroy(d).ok());
  EXPECT_TRUE(store.begin().ok());
  auto ghost = *store.create("Node");
  EXPECT_TRUE(store.set(ghost, "weight", AttrValue(std::int64_t{7})).ok());
  EXPECT_TRUE(store.abort().ok());  // leaves an epoch gap the WAL must pin
  EXPECT_TRUE(store.begin().ok());
  EXPECT_TRUE(store.set(c, "label", AttrValue(std::string("gamma"))).ok());
  EXPECT_TRUE(store.link("ref", c, a).ok());
  EXPECT_TRUE(store.commit().ok());
  return {a, b, c};
}

TEST_F(PersistenceTest, OpenRequiresDurabilityAttachmentAndEmptiness) {
  Store plain(persist_schema(), &clock);
  auto st = plain.open(fs, journal_dir());
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, Errc::invalid_argument);
  EXPECT_FALSE(plain.wal_stats().attached);

  Store dirty(persist_schema(), &clock, durable());
  (void)*dirty.create("Node");
  EXPECT_FALSE(dirty.open(fs, journal_dir()).ok());

  Store store(persist_schema(), &clock, durable());
  ASSERT_TRUE(store.open(fs, journal_dir()).ok());
  auto again = store.open(fs, journal_dir());
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error().code, Errc::already_exists);
}

TEST_F(PersistenceTest, EmptyStoreOpenIsRecoverable) {
  {
    Store store(persist_schema(), &clock, durable());
    ASSERT_TRUE(store.open(fs, journal_dir()).ok());
    EXPECT_TRUE(store.wal_stats().attached);
    EXPECT_EQ(store.wal_stats().commit_seq, 0u);
  }
  Store reopened(persist_schema(), &clock, durable());
  ASSERT_TRUE(reopened.open(fs, journal_dir()).ok());
  EXPECT_EQ(reopened.object_count(), 0u);
  EXPECT_EQ(reopened.epoch(), 0u);
}

TEST_F(PersistenceTest, WalOnlyReopenRestoresTheImage) {
  Store store(persist_schema(), &clock, durable());
  ASSERT_TRUE(store.open(fs, journal_dir()).ok());
  populate(store);
  const std::string before = digest(store);

  Store recovered(persist_schema(), &clock, durable());
  ASSERT_TRUE(recovered.open(fs, journal_dir()).ok());
  EXPECT_EQ(digest(recovered), before);
  EXPECT_GT(recovered.wal_stats().replayed_records, 0u);
  EXPECT_EQ(recovered.wal_stats().snapshots_loaded, 0u);
  EXPECT_EQ(recovered.wal_stats().commit_seq, store.wal_stats().commit_seq);
  // Recovered ids never collide with the old image's, including ids
  // consumed by the aborted transaction.
  auto fresh = recovered.create("Node");
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(store.exists(*fresh));
}

TEST_F(PersistenceTest, SnapshotOnlyReopenRestoresTheImage) {
  Store store(persist_schema(), &clock, durable());
  ASSERT_TRUE(store.open(fs, journal_dir()).ok());
  populate(store);
  ASSERT_TRUE(store.snapshot().ok());
  const std::string before = digest(store);
  // The snapshot truncated the log back to its header.
  auto wal = fs.read_file(journal_dir().child("wal"));
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(*wal, std::string(wal::kFileHeader));

  Store recovered(persist_schema(), &clock, durable());
  ASSERT_TRUE(recovered.open(fs, journal_dir()).ok());
  EXPECT_EQ(digest(recovered), before);
  EXPECT_EQ(recovered.wal_stats().replayed_records, 0u);
  EXPECT_EQ(recovered.wal_stats().snapshots_loaded, 1u);
}

TEST_F(PersistenceTest, SnapshotPlusTailReopenRestoresTheImage) {
  Store store(persist_schema(), &clock, durable());
  ASSERT_TRUE(store.open(fs, journal_dir()).ok());
  auto ids = populate(store);
  ASSERT_TRUE(store.snapshot().ok());
  EXPECT_TRUE(store.set(ids[0], "weight", AttrValue(std::int64_t{1000})).ok());
  EXPECT_TRUE(store.link("edge", ids[2], ids[1]).ok());
  const std::string before = digest(store);

  Store recovered(persist_schema(), &clock, durable());
  ASSERT_TRUE(recovered.open(fs, journal_dir()).ok());
  EXPECT_EQ(digest(recovered), before);
  EXPECT_EQ(recovered.wal_stats().snapshots_loaded, 1u);
  EXPECT_EQ(recovered.wal_stats().replayed_records, 2u);
}

TEST_F(PersistenceTest, CorruptTailIsDiscardedWholesale) {
  Store store(persist_schema(), &clock, durable());
  ASSERT_TRUE(store.open(fs, journal_dir()).ok());
  populate(store);
  const std::string before = digest(store);
  auto wal = fs.read_file(journal_dir().child("wal"));
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(fs.write_file(journal_dir().child("wal"), *wal + "garbage tail bytes").ok());

  Store recovered(persist_schema(), &clock, durable());
  ASSERT_TRUE(recovered.open(fs, journal_dir()).ok());
  EXPECT_EQ(digest(recovered), before);
  EXPECT_GT(recovered.wal_stats().discarded_bytes, 0u);
  // The rewrite scrubbed the suffix: a second recovery sees a clean log.
  Store again(persist_schema(), &clock, durable());
  ASSERT_TRUE(again.open(fs, journal_dir()).ok());
  EXPECT_EQ(digest(again), before);
  EXPECT_EQ(again.wal_stats().discarded_bytes, 0u);
}

TEST_F(PersistenceTest, TornAppendIsRepairedBeforeTheNextFlush) {
  Store store(persist_schema(), &clock, durable());
  ASSERT_TRUE(store.open(fs, journal_dir()).ok());
  auto a = *store.create("Node");

  // The next append tears: half the frame lands, the flush fails, but
  // the commit itself stays visible in memory.
  auto plan = support::faultsim::parse_plan("vfs.append.torn@1");
  ASSERT_TRUE(plan.ok());
  support::faultsim::Injector::global().arm(std::move(*plan));
  EXPECT_TRUE(store.set(a, "label", AttrValue(std::string("survives"))).ok());
  support::faultsim::Injector::global().disarm();
  EXPECT_GE(store.wal_stats().flush_failures, 1u);
  EXPECT_GT(store.wal_stats().pending_records, 0u);

  // The following commit truncates the torn half-frame and re-appends
  // the buffered record ahead of its own -- nothing is lost.
  EXPECT_TRUE(store.set(a, "weight", AttrValue(std::int64_t{5})).ok());
  EXPECT_EQ(store.wal_stats().pending_records, 0u);
  const std::string before = digest(store);

  Store recovered(persist_schema(), &clock, durable());
  ASSERT_TRUE(recovered.open(fs, journal_dir()).ok());
  EXPECT_EQ(digest(recovered), before);
  EXPECT_EQ(recovered.wal_stats().discarded_bytes, 0u);
}

TEST_F(PersistenceTest, GroupCommitBuffersUntilFlush) {
  Store store(persist_schema(), &clock, durable(/*group=*/8));
  ASSERT_TRUE(store.open(fs, journal_dir()).ok());
  auto a = *store.create("Node");
  EXPECT_TRUE(store.set(a, "weight", AttrValue(std::int64_t{1})).ok());
  EXPECT_EQ(store.wal_stats().pending_records, 2u);
  EXPECT_EQ(store.wal_stats().flushes, 0u);

  // Committed-prefix crash semantics: a crash now loses the buffered
  // suffix -- the journal on disk is still just the header.
  {
    Store crashed(persist_schema(), &clock, durable());
    ASSERT_TRUE(crashed.open(fs, journal_dir()).ok());
    EXPECT_EQ(crashed.object_count(), 0u);
  }

  ASSERT_TRUE(store.flush_wal().ok());
  EXPECT_EQ(store.wal_stats().pending_records, 0u);
  const std::string before = digest(store);
  Store recovered(persist_schema(), &clock, durable());
  ASSERT_TRUE(recovered.open(fs, journal_dir()).ok());
  EXPECT_EQ(digest(recovered), before);
}

TEST_F(PersistenceTest, AutoSnapshotCadenceTruncatesTheLog) {
  Store store(persist_schema(), &clock, durable(/*group=*/1, /*snapshot_every=*/2));
  ASSERT_TRUE(store.open(fs, journal_dir()).ok());
  auto ids = populate(store);
  EXPECT_TRUE(store.set(ids[0], "flag", AttrValue(false)).ok());
  EXPECT_GE(store.wal_stats().snapshots_written, 2u);
  const std::string before = digest(store);

  Store recovered(persist_schema(), &clock, durable());
  ASSERT_TRUE(recovered.open(fs, journal_dir()).ok());
  EXPECT_EQ(digest(recovered), before);
  EXPECT_EQ(recovered.wal_stats().snapshots_loaded, 1u);
}

TEST_F(PersistenceTest, HalfWrittenSnapshotFallsBackToOlderState) {
  Store store(persist_schema(), &clock, durable());
  ASSERT_TRUE(store.open(fs, journal_dir()).ok());
  auto ids = populate(store);
  ASSERT_TRUE(store.snapshot().ok());
  EXPECT_TRUE(store.set(ids[1], "label", AttrValue(std::string("tail"))).ok());

  // Kill the next snapshot partway through its writes: the half-written
  // directory must be rejected at recovery in favour of the previous
  // snapshot + WAL tail.
  auto plan = support::faultsim::parse_plan("oms.snapshot@1");
  ASSERT_TRUE(plan.ok());
  support::faultsim::Injector::global().arm(std::move(*plan));
  EXPECT_FALSE(store.snapshot().ok());
  support::faultsim::Injector::global().disarm();
  EXPECT_TRUE(store.set(ids[1], "weight", AttrValue(std::int64_t{9})).ok());
  const std::string before = digest(store);

  Store recovered(persist_schema(), &clock, durable());
  ASSERT_TRUE(recovered.open(fs, journal_dir()).ok());
  EXPECT_EQ(digest(recovered), before);
}

TEST_F(PersistenceTest, DurabilityOffIsBitIdentical) {
  // Journal into a file system with its OWN clock so the WAL appends
  // do not advance the store clock -- the ablation compares the paper's
  // volatile store against a durable one under identical stamps.
  support::SimClock store_clock, journal_clock;
  vfs::FileSystem journal_fs(&journal_clock);
  Store durable_store(persist_schema(), &store_clock, durable());
  ASSERT_TRUE(durable_store.open(journal_fs, journal_dir()).ok());
  support::SimClock plain_clock;
  Store plain(persist_schema(), &plain_clock);
  populate(durable_store);
  populate(plain);
  EXPECT_EQ(digest(durable_store), digest(plain));
  EXPECT_FALSE(plain.wal_stats().attached);
}

// ===========================================================================
// Crash-replay property: for a seeded random workload, cutting the WAL
// at ANY byte offset and recovering yields exactly the image of the
// longest committed prefix whose records survived intact.
// ===========================================================================

struct Workload {
  std::map<std::uint64_t, std::string> digest_at_seq;  // oracle, keyed by commit seq
  std::string wal_bytes;                               // final on-disk journal
};

Workload run_workload(support::SimClock& clock, vfs::FileSystem& fs, std::uint32_t seed) {
  Store store(persist_schema(), &clock, durable());
  EXPECT_TRUE(store.open(fs, journal_dir()).ok());
  support::Rng rng(seed);
  std::vector<ObjectId> live;
  Workload out;
  out.digest_at_seq[0] = digest(store);
  for (int tx = 0; tx < 30; ++tx) {
    EXPECT_TRUE(store.begin().ok());
    const std::size_t ops = 1 + rng.below(4);
    for (std::size_t i = 0; i < ops; ++i) {
      const std::uint64_t kind = rng.below(6);
      if (kind == 0 || live.size() < 2) {
        auto id = store.create(rng.chance(0.3) ? "Leaf" : "Node");
        if (id.ok()) live.push_back(*id);
      } else if (kind == 1) {
        (void)store.set(rng.pick(live), "weight",
                        AttrValue(static_cast<std::int64_t>(rng.below(1000))));
      } else if (kind == 2) {
        (void)store.set(rng.pick(live), "label", AttrValue(rng.identifier(8)));
      } else if (kind == 3) {
        (void)store.set(rng.pick(live), "ratio", AttrValue(rng.uniform()));
      } else if (kind == 4) {
        (void)store.link("edge", rng.pick(live), rng.pick(live));
      } else {
        (void)store.unlink("edge", rng.pick(live), rng.pick(live));
      }
    }
    if (live.size() > 4 && rng.chance(0.15)) {
      ObjectId victim = rng.pick(live);
      if (store.destroy(victim).ok()) live.erase(std::find(live.begin(), live.end(), victim));
    }
    if (rng.chance(0.2)) {
      EXPECT_TRUE(store.abort().ok());
      // An abort may have rolled back creates whose ids are in `live`.
      std::erase_if(live, [&](ObjectId id) { return !store.exists(id); });
    } else {
      EXPECT_TRUE(store.commit().ok());
      out.digest_at_seq[store.wal_stats().commit_seq] = digest(store);
    }
  }
  auto wal = fs.read_file(journal_dir().child("wal"));
  EXPECT_TRUE(wal.ok());
  out.wal_bytes = *wal;
  return out;
}

void expect_recovers_prefix(const std::string& cut_bytes, const Workload& oracle,
                            std::uint64_t expect_seq) {
  support::SimClock clock;
  vfs::FileSystem fs(&clock);
  ASSERT_TRUE(fs.mkdirs(journal_dir()).ok());
  ASSERT_TRUE(fs.write_file(journal_dir().child("wal"), cut_bytes).ok());
  Store recovered(persist_schema(), &clock, durable());
  ASSERT_TRUE(recovered.open(fs, journal_dir()).ok());
  EXPECT_EQ(recovered.wal_stats().commit_seq, expect_seq);
  ASSERT_TRUE(oracle.digest_at_seq.contains(expect_seq));
  EXPECT_EQ(digest(recovered), oracle.digest_at_seq.at(expect_seq));
}

TEST_F(PersistenceTest, CrashReplayMatchesCommittedPrefixAtEveryCut) {
  for (std::uint32_t seed : jfm::testing::test_seeds("oms_persistence", {1, 2, 3, 4})) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    support::SimClock wclock;
    vfs::FileSystem wfs(&wclock);
    const Workload oracle = run_workload(wclock, wfs, seed);

    const std::string header(wal::kFileHeader);
    ASSERT_EQ(oracle.wal_bytes.substr(0, header.size()), header);
    const std::string body = oracle.wal_bytes.substr(header.size());
    const wal::ScanResult scanned = wal::scan(body);
    ASSERT_FALSE(scanned.torn);
    ASSERT_FALSE(scanned.records.empty());
    ASSERT_EQ(scanned.valid_bytes, body.size());

    // Every record boundary, including the empty log.
    expect_recovers_prefix(header, oracle, 0);
    for (std::size_t i = 0; i < scanned.records.size(); ++i) {
      expect_recovers_prefix(header + body.substr(0, scanned.record_ends[i]), oracle,
                             scanned.records[i].seq);
    }
    // Mid-record cuts: a torn final frame is discarded, recovering the
    // previous boundary. Sample a few offsets inside random records.
    support::Rng rng(seed ^ 0x9e3779b9u);
    for (int probe = 0; probe < 6; ++probe) {
      const std::size_t i = rng.below(scanned.records.size());
      const std::uint64_t begin = i == 0 ? 0 : scanned.record_ends[i - 1];
      const std::uint64_t end = scanned.record_ends[i];
      if (end - begin < 2) continue;
      const std::uint64_t cut = begin + 1 + rng.below(end - begin - 1);
      expect_recovers_prefix(header + body.substr(0, cut), oracle,
                             i == 0 ? 0 : scanned.records[i - 1].seq);
    }
    // A cut inside the file header itself discards everything.
    expect_recovers_prefix(header.substr(0, 3), oracle, 0);
  }
}

}  // namespace
}  // namespace jfm::oms
