// Layout model (geometry, DRC) and the layout editor tool.

#include <gtest/gtest.h>

#include "jfm/tools/layout_tool.hpp"

namespace jfm::tools {
namespace {

using support::Errc;

Layout sample_layout() {
  Layout l;
  l.layers = {"metal1", "metal2"};
  l.rects = {{"metal1", 0, 0, 100, 20, "a"},
             {"metal1", 0, 50, 100, 70, "b"},
             {"metal2", 10, 10, 30, 30, ""}};
  l.placements = {{"u0", "child", "layout", 200, 0}};
  return l;
}

TEST(Layout, SerializeParseRoundTrip) {
  Layout l = sample_layout();
  auto parsed = Layout::parse(l.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->serialize(), l.serialize());
  EXPECT_EQ(parsed->rects.size(), 3u);
  EXPECT_EQ(parsed->placements[0].x, 200);
}

TEST(Layout, ParseNormalizesAndRejects) {
  auto flipped = Layout::parse("layer m\nrect m 10 20 0 5\n");
  ASSERT_TRUE(flipped.ok());
  EXPECT_EQ(flipped->rects[0].x1, 0);
  EXPECT_EQ(flipped->rects[0].y2, 20);
  EXPECT_EQ(Layout::parse("rect m a b c d").code(), Errc::parse_error);
  EXPECT_EQ(Layout::parse("what 1").code(), Errc::parse_error);
}

TEST(Layout, Validate) {
  EXPECT_TRUE(sample_layout().validate().ok());
  {
    Layout l = sample_layout();
    l.rects.push_back({"ghost_layer", 0, 0, 1, 1, ""});
    EXPECT_EQ(l.validate().code(), Errc::consistency_violation);
  }
  {
    Layout l = sample_layout();
    l.rects.push_back({"metal1", 5, 5, 5, 9, ""});  // zero width
    EXPECT_EQ(l.validate().code(), Errc::invalid_argument);
  }
  {
    Layout l = sample_layout();
    l.placements.push_back({"u0", "other", "layout", 0, 0});
    EXPECT_EQ(l.validate().code(), Errc::already_exists);
  }
  {
    Layout l = sample_layout();
    l.layers.push_back("metal1");
    EXPECT_EQ(l.validate().code(), Errc::already_exists);
  }
}

TEST(Layout, GeometryQueries) {
  Layout l = sample_layout();
  auto box = l.bbox();
  ASSERT_FALSE(box.empty);
  EXPECT_EQ(box.x1, 0);
  EXPECT_EQ(box.y2, 70);
  EXPECT_EQ(l.layer_area("metal1"), 100 * 20 + 100 * 20);
  EXPECT_EQ(l.layer_area("metal2"), 400);
  EXPECT_EQ(l.layer_area("poly"), 0);
  EXPECT_EQ(l.rects_on_net("a"), std::vector<std::size_t>{0});
  EXPECT_TRUE(Layout{}.bbox().empty);
}

TEST(Layout, DrcSpacing) {
  Layout l;
  l.layers = {"m"};
  l.rects = {{"m", 0, 0, 10, 10, "a"},
             {"m", 15, 0, 25, 10, "b"},    // 5 away from #0
             {"m", 100, 0, 110, 10, "c"},  // far away
             {"m", 5, 5, 20, 8, "d"}};     // overlaps #0 and #1
  auto violations = l.drc_spacing(6);
  // pairs closer than 6: (0,1) gap 5, (0,3) overlap, (1,3) overlap
  ASSERT_EQ(violations.size(), 3u);
  EXPECT_EQ(violations[0].distance, 5);
  EXPECT_EQ(violations[1].distance, 0);
  // same-net rectangles may abut
  Layout same;
  same.layers = {"m"};
  same.rects = {{"m", 0, 0, 10, 10, "n"}, {"m", 10, 0, 20, 10, "n"}};
  EXPECT_TRUE(same.drc_spacing(3).empty());
  // tight rule passes when spacing is honored
  EXPECT_TRUE(l.drc_spacing(1).size() == 2u);  // only the overlaps remain
  EXPECT_FALSE(violations[0].describe().empty());
}

class LayoutToolTest : public ::testing::Test {
 protected:
  fmcad::DesignFile doc() {
    fmcad::DesignFile d;
    d.cell = "alu";
    d.view = "layout";
    d.viewtype = "layout";
    return d;
  }
  fmcad::DesignFile apply_ok(fmcad::DesignFile d, const std::string& cmd,
                             const std::vector<std::string>& args) {
    auto out = tool.apply(d, cmd, args);
    EXPECT_TRUE(out.ok()) << cmd << ": " << (out.ok() ? "" : out.error().to_text());
    return out.ok() ? *out : d;
  }
  LayoutTool tool;
};

TEST_F(LayoutToolTest, DrawMoveDelete) {
  auto d = doc();
  d = apply_ok(d, "add-layer", {"metal1"});
  d = apply_ok(d, "draw-rect", {"metal1", "0", "0", "10", "10", "n1"});
  d = apply_ok(d, "move-rect", {"0", "5", "-2"});
  auto l = Layout::parse(d.payload);
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(l->rects[0].x1, 5);
  EXPECT_EQ(l->rects[0].y1, -2);
  d = apply_ok(d, "delete-rect", {"0"});
  l = Layout::parse(d.payload);
  EXPECT_TRUE(l->rects.empty());
  EXPECT_TRUE(tool.validate(d).ok());
}

TEST_F(LayoutToolTest, PlacementsSyncUses) {
  auto d = doc();
  d = apply_ok(d, "add-instance", {"u0", "child", "layout", "100", "200"});
  ASSERT_EQ(d.uses.size(), 1u);
  EXPECT_EQ(d.uses[0].cell, "child");
  d = apply_ok(d, "remove-instance", {"u0"});
  EXPECT_TRUE(d.uses.empty());
  EXPECT_EQ(tool.apply(d, "add-instance", {"u0", "alu", "layout", "0", "0"}).code(),
            Errc::consistency_violation);  // self-placement
}

TEST_F(LayoutToolTest, CheckDrcGate) {
  auto d = doc();
  d = apply_ok(d, "add-layer", {"m"});
  d = apply_ok(d, "draw-rect", {"m", "0", "0", "10", "10", "a"});
  d = apply_ok(d, "draw-rect", {"m", "12", "0", "22", "10", "b"});  // 2 apart
  // rule 2 passes, rule 5 fails with a descriptive message
  EXPECT_TRUE(tool.apply(d, "check-drc", {"2"}).ok());
  auto violating = tool.apply(d, "check-drc", {"5"});
  ASSERT_FALSE(violating.ok());
  EXPECT_EQ(violating.error().code, Errc::consistency_violation);
  EXPECT_NE(violating.error().message.find("violation"), std::string::npos);
  EXPECT_EQ(tool.apply(d, "check-drc", {"0"}).code(), Errc::invalid_argument);
  EXPECT_EQ(tool.apply(d, "check-drc", {"x"}).code(), Errc::invalid_argument);
}

TEST_F(LayoutToolTest, CommandErrors) {
  auto d = doc();
  EXPECT_EQ(tool.apply(d, "draw-rect", {"ghost", "0", "0", "1", "1"}).code(), Errc::not_found);
  d = apply_ok(d, "add-layer", {"m"});
  EXPECT_EQ(tool.apply(d, "add-layer", {"m"}).code(), Errc::already_exists);
  EXPECT_EQ(tool.apply(d, "draw-rect", {"m", "0", "0", "0", "9"}).code(),
            Errc::invalid_argument);  // degenerate
  EXPECT_EQ(tool.apply(d, "draw-rect", {"m", "x", "0", "1", "1"}).code(),
            Errc::invalid_argument);
  EXPECT_EQ(tool.apply(d, "move-rect", {"5", "0", "0"}).code(), Errc::not_found);
  EXPECT_EQ(tool.apply(d, "explode", {}).code(), Errc::not_found);
}

}  // namespace
}  // namespace jfm::tools
