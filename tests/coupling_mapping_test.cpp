// Table 1: the JCF <-> FMCAD data model mapping, including a randomized
// lossless round-trip property (FMCAD -> JCF -> FMCAD).

#include <gtest/gtest.h>

#include "jfm/coupling/mapping.hpp"
#include "jfm/support/rng.hpp"

namespace jfm::coupling {
namespace {

using support::Errc;
using support::Rng;

TEST(MappingTable, MatchesThePaper) {
  const auto& table = mapping_table();
  ASSERT_EQ(table.size(), 5u);
  EXPECT_EQ(table[0].jcf_object, "Project");
  EXPECT_EQ(table[0].fmcad_object, "Library");
  EXPECT_EQ(table[1].jcf_object, "CellVersion");
  EXPECT_EQ(table[1].fmcad_object, "Cell");
  EXPECT_EQ(table[2].jcf_object, "ViewType");
  EXPECT_EQ(table[2].fmcad_object, "View");
  EXPECT_EQ(table[3].jcf_object, "DesignObject");
  EXPECT_EQ(table[3].fmcad_object, "Cellview");
  EXPECT_EQ(table[4].jcf_object, "DesignObjectVersion");
  EXPECT_EQ(table[4].fmcad_object, "Cellview Version");
}

class MapperTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(fs.mkdirs(vfs::Path().child("libs")).ok());
    integrator = *jcf.create_user("integrator");
    team = *jcf.create_team("designers");
    ASSERT_TRUE(jcf.add_member(team, integrator).ok());
    auto tool = *jcf.register_tool("t");
    auto vt = *jcf.create_viewtype("any");
    auto act = *jcf.create_activity("a", tool, {}, {vt});
    flow = *jcf.create_flow("f", {act});
    ASSERT_TRUE(jcf.freeze_flow(flow).ok());
  }

  std::shared_ptr<fmcad::Library> make_library(const std::string& name, Rng& rng,
                                               int cells, int max_versions) {
    auto lib = fmcad::Library::create(&fs, &clock, vfs::Path().child("libs"), name);
    EXPECT_TRUE(lib.ok());
    fmcad::DesignerSession session(*lib, "builder");
    EXPECT_TRUE(session.define_view("schematic", "schematic").ok());
    EXPECT_TRUE(session.define_view("layout", "layout").ok());
    for (int c = 0; c < cells; ++c) {
      const std::string cell = "cell" + std::to_string(c);
      EXPECT_TRUE(session.create_cell(cell).ok());
      for (const std::string view : {"schematic", "layout"}) {
        if (rng.chance(0.3)) continue;
        fmcad::CellViewKey key{cell, view};
        EXPECT_TRUE(session.create_cellview(key).ok());
        const int versions = static_cast<int>(rng.range(1, max_versions));
        for (int v = 0; v < versions; ++v) {
          EXPECT_TRUE(session.checkout(key).ok());
          EXPECT_TRUE(session
                          .write_working(key, "content " + cell + "/" + view + " rev " +
                                                  std::to_string(v) + " " + rng.identifier(16))
                          .ok());
          EXPECT_TRUE(session.checkin(key).ok());
        }
      }
    }
    return *lib;
  }

  support::SimClock clock;
  vfs::FileSystem fs{&clock};
  jcf::JcfFramework jcf{&clock};
  jcf::UserRef integrator;
  jcf::TeamRef team;
  jcf::FlowRef flow;
};

TEST_F(MapperTest, ImportCreatesTable1Objects) {
  Rng rng(1);
  auto lib = make_library("mylib", rng, 3, 3);
  ModelMapper mapper(&jcf, integrator, team, flow);
  MappingStats stats;
  auto project = mapper.import_library(*lib, &stats);
  ASSERT_TRUE(project.ok()) << project.error().to_text();
  // Project <- Library
  EXPECT_EQ(*jcf.name_of(project->id), "mylib");
  // CellVersion <- Cell
  EXPECT_EQ(jcf.cells(*project)->size(), lib->meta().cells.size());
  EXPECT_EQ(stats.cells, lib->meta().cells.size());
  EXPECT_EQ(stats.cellviews, lib->meta().cellviews.size());
  // every imported design object version is readable (published)
  auto reader = *jcf.create_user("reader");
  auto cells = jcf.cells(*project);
  ASSERT_TRUE(cells.ok());
  for (auto cell : *cells) {
    auto cv = *jcf.latest_cell_version(cell);
    EXPECT_EQ(*jcf.version_number(cv), 1);
    auto variant = *jcf.find_variant(cv, ModelMapper::import_variant());
    auto dobjs = jcf.design_objects(variant);
    ASSERT_TRUE(dobjs.ok());
    for (auto dobj : *dobjs) {
      auto dovs = jcf.dov_versions(dobj);
      ASSERT_TRUE(dovs.ok());
      for (auto dov : *dovs) {
        EXPECT_TRUE(jcf.dov_data(dov, reader).ok());
      }
    }
  }
}

TEST_F(MapperTest, RoundTripIsLossless) {
  Rng rng(2);
  auto original = make_library("original", rng, 4, 4);
  ModelMapper mapper(&jcf, integrator, team, flow);
  auto project = mapper.import_library(*original, nullptr);
  ASSERT_TRUE(project.ok());
  auto rebuilt =
      mapper.export_project(*project, &fs, &clock, vfs::Path().child("libs"), "rebuilt", nullptr);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.error().to_text();
  auto diffs = diff_libraries(*original, **rebuilt);
  EXPECT_TRUE(diffs.empty()) << diffs[0];
}

TEST_F(MapperTest, DiffDetectsDivergence) {
  Rng rng(3);
  auto a = make_library("liba", rng, 2, 2);
  Rng rng2(99);
  auto b = make_library("libb", rng2, 3, 2);
  auto diffs = diff_libraries(*a, *b);
  EXPECT_FALSE(diffs.empty());
}

TEST_F(MapperTest, ImportTwiceCollides) {
  Rng rng(4);
  auto lib = make_library("dup", rng, 1, 1);
  ModelMapper mapper(&jcf, integrator, team, flow);
  ASSERT_TRUE(mapper.import_library(*lib, nullptr).ok());
  auto again = mapper.import_library(*lib, nullptr);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error().code, Errc::already_exists);
}

struct RoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripProperty, RandomLibrariesSurvive) {
  support::SimClock clock;
  vfs::FileSystem fs(&clock);
  ASSERT_TRUE(fs.mkdirs(vfs::Path().child("libs")).ok());
  jcf::JcfFramework jcf(&clock);
  auto integrator = *jcf.create_user("i");
  auto team = *jcf.create_team("t");
  ASSERT_TRUE(jcf.add_member(team, integrator).ok());
  auto tool = *jcf.register_tool("tl");
  auto vt = *jcf.create_viewtype("any");
  auto act = *jcf.create_activity("a", tool, {}, {vt});
  auto flow = *jcf.create_flow("f", {act});
  ASSERT_TRUE(jcf.freeze_flow(flow).ok());

  Rng rng(GetParam());
  auto lib = fmcad::Library::create(&fs, &clock, vfs::Path().child("libs"), "src");
  ASSERT_TRUE(lib.ok());
  fmcad::DesignerSession session(*lib, "builder");
  const int n_views = static_cast<int>(rng.range(1, 3));
  for (int v = 0; v < n_views; ++v) {
    ASSERT_TRUE(session.define_view("view" + std::to_string(v), "vt").ok());
  }
  const int n_cells = static_cast<int>(rng.range(1, 5));
  for (int c = 0; c < n_cells; ++c) {
    const std::string cell = "c" + std::to_string(c);
    ASSERT_TRUE(session.create_cell(cell).ok());
    for (int v = 0; v < n_views; ++v) {
      if (rng.chance(0.4)) continue;
      fmcad::CellViewKey key{cell, "view" + std::to_string(v)};
      ASSERT_TRUE(session.create_cellview(key).ok());
      for (int k = 0, n = static_cast<int>(rng.range(0, 3)); k < n; ++k) {
        ASSERT_TRUE(session.checkout(key).ok());
        ASSERT_TRUE(session.write_working(key, rng.identifier(32)).ok());
        ASSERT_TRUE(session.checkin(key).ok());
      }
    }
  }
  ModelMapper mapper(&jcf, integrator, team, flow);
  auto project = mapper.import_library(**lib, nullptr);
  ASSERT_TRUE(project.ok()) << project.error().to_text();
  auto rebuilt =
      mapper.export_project(*project, &fs, &clock, vfs::Path().child("libs"), "dst", nullptr);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.error().to_text();
  auto diffs = diff_libraries(**lib, **rebuilt);
  EXPECT_TRUE(diffs.empty()) << diffs[0];
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripProperty, ::testing::Range<std::uint64_t>(10, 22));

}  // namespace
}  // namespace jfm::coupling
