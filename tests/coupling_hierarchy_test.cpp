// Hierarchy coupling (paper s2.3/s3.3): manual desktop submission,
// the procedural-interface future work, and the non-isomorphic
// hierarchy limitation of JCF 3.0.

#include <gtest/gtest.h>

#include "jfm/coupling/hierarchy_sync.hpp"
#include "jfm/fmcad/session.hpp"

namespace jfm::coupling {
namespace {

using support::Errc;

class HierarchySyncTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(fs.mkdirs(vfs::Path().child("libs")).ok());
    auto lib = fmcad::Library::create(&fs, &clock, vfs::Path().child("libs"), "work");
    ASSERT_TRUE(lib.ok());
    library = *lib;
    session = std::make_unique<fmcad::DesignerSession>(library, "u");
    ASSERT_TRUE(session->define_view("schematic", "schematic").ok());
    ASSERT_TRUE(session->define_view("layout", "layout").ok());

    user = *jcf.create_user("alice");
    team = *jcf.create_team("rtl");
    ASSERT_TRUE(jcf.add_member(team, user).ok());
    auto tool = *jcf.register_tool("t");
    auto vt = *jcf.create_viewtype("schematic");
    auto act = *jcf.create_activity("a", tool, {}, {vt});
    flow = *jcf.create_flow("f", {act});
    ASSERT_TRUE(jcf.freeze_flow(flow).ok());
    project = *jcf.create_project("chip", team);
  }

  void put(const std::string& cell, const std::string& view,
           const std::vector<fmcad::CellViewKey>& uses) {
    if (!library->meta().has_cell(cell)) {
      ASSERT_TRUE(session->create_cell(cell).ok());
    }
    fmcad::CellViewKey key{cell, view};
    if (library->meta().find_cellview(key) == nullptr) {
      ASSERT_TRUE(session->create_cellview(key).ok());
    }
    fmcad::DesignFile file;
    file.cell = cell;
    file.view = view;
    file.viewtype = view;
    file.uses = uses;
    file.payload = "p\n";
    ASSERT_TRUE(session->checkout(key).ok());
    ASSERT_TRUE(session->write_working(key, file.serialize()).ok());
    ASSERT_TRUE(session->checkin(key).ok());
  }

  jcf::CellVersionRef register_cell(const std::string& name) {
    auto cell = *jcf.create_cell(project, name, flow, team);
    return *jcf.create_cell_version(cell, user);
  }

  support::SimClock clock;
  vfs::FileSystem fs{&clock};
  std::shared_ptr<fmcad::Library> library;
  std::unique_ptr<fmcad::DesignerSession> session;
  jcf::JcfFramework jcf{&clock};
  jcf::UserRef user;
  jcf::TeamRef team;
  jcf::FlowRef flow;
  jcf::ProjectRef project;
};

TEST_F(HierarchySyncTest, ManualSubmitCountsDesktopSteps) {
  put("leaf1", "schematic", {});
  put("leaf2", "schematic", {});
  put("top", "schematic", {{"leaf1", "schematic"}, {"leaf2", "schematic"}});
  auto top_cv = register_cell("top");
  auto l1 = register_cell("leaf1");
  auto l2 = register_cell("leaf2");

  HierarchySubmitter submitter(&jcf, /*procedural=*/false, /*allow_non_isomorphic=*/false);
  ASSERT_TRUE(submitter.submit(*library, {"top", "schematic"}, project).ok());
  EXPECT_EQ(submitter.stats().desktop_steps, 2u);
  EXPECT_EQ(submitter.stats().relations_submitted, 2u);
  EXPECT_EQ(submitter.stats().procedural_calls, 0u);
  auto kids = jcf.children(top_cv);
  ASSERT_TRUE(kids.ok());
  EXPECT_EQ(kids->size(), 2u);
  // resubmitting is idempotent and free
  ASSERT_TRUE(submitter.submit(*library, {"top", "schematic"}, project).ok());
  EXPECT_EQ(submitter.stats().desktop_steps, 2u);
  (void)l1;
  (void)l2;
}

TEST_F(HierarchySyncTest, ProceduralModeSkipsDesktop) {
  put("leaf1", "schematic", {});
  put("top", "schematic", {{"leaf1", "schematic"}});
  register_cell("top");
  register_cell("leaf1");
  HierarchySubmitter submitter(&jcf, /*procedural=*/true, false);
  ASSERT_TRUE(submitter.submit(*library, {"top", "schematic"}, project).ok());
  EXPECT_EQ(submitter.stats().desktop_steps, 0u);
  EXPECT_EQ(submitter.stats().procedural_calls, 1u);
  EXPECT_EQ(submitter.stats().relations_submitted, 1u);
}

TEST_F(HierarchySyncTest, UnregisteredChildRejected) {
  put("ghost_child", "schematic", {});
  put("top", "schematic", {{"ghost_child", "schematic"}});
  register_cell("top");  // child NOT registered in JCF
  HierarchySubmitter submitter(&jcf, false, false);
  auto st = submitter.submit(*library, {"top", "schematic"}, project);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, Errc::consistency_violation);
  EXPECT_NE(st.error().message.find("ghost_child"), std::string::npos);
}

TEST_F(HierarchySyncTest, UndeclaredChildrenQuery) {
  put("a", "schematic", {});
  put("b", "schematic", {});
  put("top", "schematic", {{"a", "schematic"}, {"b", "schematic"}});
  auto top_cv = register_cell("top");
  auto a_cv = register_cell("a");
  register_cell("b");
  HierarchySubmitter submitter(&jcf, false, false);
  auto missing = submitter.undeclared_children(*library, {"top", "schematic"}, project);
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->size(), 2u);
  ASSERT_TRUE(submitter.declare(top_cv, a_cv).ok());
  missing = submitter.undeclared_children(*library, {"top", "schematic"}, project);
  ASSERT_TRUE(missing.ok());
  ASSERT_EQ(missing->size(), 1u);
  EXPECT_EQ((*missing)[0], "b");
  EXPECT_EQ(submitter.stats().desktop_steps, 1u);
}

TEST_F(HierarchySyncTest, IsomorphicViewsAccepted) {
  put("sub", "schematic", {});
  put("sub", "layout", {});
  put("top", "schematic", {{"sub", "schematic"}});
  put("top", "layout", {{"sub", "layout"}});
  HierarchySubmitter submitter(&jcf, false, false);
  EXPECT_TRUE(submitter.check_isomorphic(*library, "top", {"schematic", "layout"}).ok());
}

TEST_F(HierarchySyncTest, NonIsomorphicRejectedUnlessExtensionOn) {
  put("sub", "schematic", {});
  put("sub", "layout", {});
  put("extra", "layout", {});
  put("top", "schematic", {{"sub", "schematic"}});
  put("top", "layout", {{"sub", "layout"}, {"extra", "layout"}});
  HierarchySubmitter strict(&jcf, false, /*allow_non_isomorphic=*/false);
  auto st = strict.check_isomorphic(*library, "top", {"schematic", "layout"});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, Errc::not_supported);
  EXPECT_EQ(strict.stats().non_isomorphic_rejections, 1u);
  // the future-JCF extension accepts it
  HierarchySubmitter relaxed(&jcf, false, /*allow_non_isomorphic=*/true);
  EXPECT_TRUE(relaxed.check_isomorphic(*library, "top", {"schematic", "layout"}).ok());
}

TEST_F(HierarchySyncTest, ViewsWithoutDataSkippedInIsomorphismCheck) {
  put("sub", "schematic", {});
  put("top", "schematic", {{"sub", "schematic"}});
  // layout cellviews exist in JCF terms but hold no data yet
  HierarchySubmitter submitter(&jcf, false, false);
  EXPECT_TRUE(submitter.check_isomorphic(*library, "top", {"schematic", "layout"}).ok());
}

TEST_F(HierarchySyncTest, ProceduralBulkSubmissionGuarded) {
  register_cell("top");
  register_cell("child");
  HierarchySubmitter manual(&jcf, /*procedural=*/false, false);
  auto st = manual.submit_children(project, "top", {"child"});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, Errc::not_supported);  // JCF 3.0 has no such interface
  HierarchySubmitter procedural(&jcf, /*procedural=*/true, false);
  EXPECT_TRUE(procedural.submit_children(project, "top", {"child"}).ok());
  EXPECT_EQ(procedural.stats().relations_submitted, 1u);
}

}  // namespace
}  // namespace jfm::coupling
