// Section 3.4: user interface.
//
// Paper claim: "the designer has to work with both the FMCAD and JCF
// user interface ... the user has to cope with an extra user
// interface." We quantify the interaction surface: how many distinct
// command surfaces (desktops) and interaction steps a canonical task
// costs natively vs in the hybrid.

#include "bench_util.hpp"

namespace {

using namespace jfm;

void print_report() {
  benchutil::header("s3.4: user-interface burden for one edit-and-release task");

  // Native FMCAD: checkout -> edit -> checkin. One desktop.
  {
    benchutil::FmcadEnv env;
    env.make_cellview("alu", "schematic");
    int steps = 0;
    auto work = env.session->checkout({"alu", "schematic"});
    ++steps;  // checkout
    (void)work;
    (void)env.session->write_working({"alu", "schematic"},
                                     "cvfile 1\ncellview alu schematic schematic\npayload\n");
    ++steps;  // edit/save in the tool
    (void)env.session->checkin({"alu", "schematic"});
    ++steps;  // checkin
    benchutil::row("FMCAD alone:      1 desktop, " + std::to_string(steps) +
                   " interaction steps (checkout, edit, checkin)");
  }

  // Hybrid: the designer touches the JCF desktop (reserve), the FMCAD
  // tool (edit), and the JCF desktop again (publish) -- two UIs.
  {
    benchutil::HybridEnv env;
    env.hybrid.jcf();  // silence unused warnings in some configurations
    if (!env.hybrid.create_cell("proj", "alu", env.alice).ok()) return;
    int jcf_steps = 0;
    int fmcad_steps = 0;
    (void)env.hybrid.reserve_cell("proj", "alu", env.alice);
    ++jcf_steps;  // JCF desktop: reserve workspace
    auto run = env.hybrid.run_activity("proj", "alu", "enter_schematic", env.alice,
                                       benchutil::small_schematic_commands());
    ++jcf_steps;    // JCF desktop: start activity
    ++fmcad_steps;  // FMCAD tool window: edit + save/checkin
    (void)env.hybrid.publish_cell("proj", "alu", env.alice);
    ++jcf_steps;  // JCF desktop: publish
    const auto& burden = env.hybrid.last_ui_burden();
    benchutil::row("hybrid JCF-FMCAD: " + std::to_string(burden.desktops) + " desktops, " +
                   std::to_string(jcf_steps + fmcad_steps) + " interaction steps (" +
                   std::to_string(jcf_steps) + " on the JCF desktop + " +
                   std::to_string(fmcad_steps) + " in the FMCAD tool)");
    benchutil::row("hybrid FMCAD tool window: " + std::to_string(burden.menu_items) +
                   " menu points, of which " + std::to_string(burden.locked_items) +
                   " locked by the encapsulation");
    if (run.ok()) {
      benchutil::row("consistency windows shown during the task: " +
                     std::to_string(run->consistency_windows.size()));
    }
  }

  benchutil::header("s3.4: hierarchy declaration adds JCF-desktop-only steps");
  {
    benchutil::HybridEnv env;
    (void)env.hybrid.create_cell("proj", "leaf", env.alice);
    (void)env.hybrid.create_cell("proj", "top", env.alice);
    (void)env.hybrid.declare_child("proj", "top", "leaf");
    benchutil::row("declaring 1 parent/child relation: " +
                   std::to_string(env.hybrid.hierarchy().stats().desktop_steps) +
                   " extra JCF desktop step(s) (0 in native FMCAD, where hierarchy lives "
                   "in the design files)");
  }
}

// ---- micro-benchmarks: the per-step overhead of each surface -------------

void BM_NativeEditCycle(benchmark::State& state) {
  benchutil::FmcadEnv env;
  env.make_cellview("alu", "schematic");
  for (auto _ : state) {
    (void)env.session->checkout({"alu", "schematic"});
    (void)env.session->write_working({"alu", "schematic"}, "data");
    (void)env.session->checkin({"alu", "schematic"});
  }
}
BENCHMARK(BM_NativeEditCycle)->Unit(benchmark::kMicrosecond);

void BM_HybridEditCycle(benchmark::State& state) {
  benchutil::HybridEnv env;
  env.make_cell("alu");
  (void)env.hybrid.run_activity("proj", "alu", "enter_schematic", env.alice,
                                {{"add-net", {"n0"}}});
  bool flip = false;  // constant-size document: rename back and forth
  for (auto _ : state) {
    std::vector<coupling::ToolCommand> edits{
        {"rename-net", flip ? std::vector<std::string>{"n1", "n0"}
                            : std::vector<std::string>{"n0", "n1"}}};
    flip = !flip;
    auto run = env.hybrid.run_activity("proj", "alu", "enter_schematic", env.alice, edits);
    benchmark::DoNotOptimize(run);
  }
}
BENCHMARK(BM_HybridEditCycle)->Unit(benchmark::kMicrosecond);

void BM_MenuInvocationWithGuards(benchmark::State& state) {
  benchutil::HybridEnv env;
  env.make_cell("alu");
  // an open tool session outside an activity is read-only probing of the
  // menu machinery itself
  auto library = env.hybrid.library("proj");
  fmcad::DesignerSession session(library, "alice");
  tools::SchematicTool tool;
  fmcad::ToolSession tool_session(&session, &tool, &env.hybrid.itc(),
                                  &env.hybrid.interpreter());
  if (!tool_session.open({"alu", "schematic"}, false).ok()) std::abort();
  if (!tool_session.edit("add-net", {"m0"}).ok()) std::abort();
  bool flip = false;  // constant-size document
  for (auto _ : state) {
    auto st = tool_session.invoke_menu("Edit", "rename-net",
                                       flip ? std::vector<std::string>{"m1", "m0"}
                                            : std::vector<std::string>{"m0", "m1"});
    flip = !flip;
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_MenuInvocationWithGuards)->Unit(benchmark::kMicrosecond);

}  // namespace

JFM_BENCH_MAIN(print_report)
