// Figure 1: the JCF 3.0 information architecture. The report
// instantiates every entity/relation of the figure and prints the
// resulting object census; the micro-benchmarks time the metadata
// operations the paper calls "sufficiently high" in performance (s3.6).

#include "bench_util.hpp"
#include "jfm/jcf/framework.hpp"

namespace {

using namespace jfm;

void print_report() {
  benchutil::header("Figure 1: JCF 3.0 information architecture (instantiated)");
  support::SimClock clock;
  jcf::JcfFramework jcf(&clock);

  // resources (metadata, administrator-defined)
  auto user = *jcf.create_user("designer1");
  auto user2 = *jcf.create_user("designer2");
  auto team = *jcf.create_team("team_a");
  (void)jcf.add_member(team, user);
  (void)jcf.add_member(team, user2);
  auto tool = *jcf.register_tool("schematic_entry");
  auto vt_sch = *jcf.create_viewtype("schematic");
  auto vt_sim = *jcf.create_viewtype("simulate");
  auto enter = *jcf.create_activity("enter", tool, {}, {vt_sch});
  auto simulate = *jcf.create_activity("simulate", tool, {vt_sch}, {vt_sim});
  auto flow = *jcf.create_flow("flow1", {enter, simulate});
  (void)jcf.add_precedence(flow, enter, simulate);
  (void)jcf.freeze_flow(flow);

  // project structure: Project - Cell - CellVersion - Variant -
  // DesignObject - DesignObjectVersion, plus CompOf / precedes /
  // derived / equivalent / configurations
  auto project = *jcf.create_project("project1", team);
  auto cell = *jcf.create_cell(project, "alu", flow, team);
  auto child_cell = *jcf.create_cell(project, "adder", flow, team);
  auto cv1 = *jcf.create_cell_version(cell, user);
  auto cv2 = *jcf.create_cell_version(cell, user);
  auto child_cv = *jcf.create_cell_version(child_cell, user);
  (void)jcf.add_child(cv2, child_cv);  // CompOf hierarchy
  (void)jcf.reserve(cv2, user);
  auto variant = *jcf.create_variant(cv2, "variant1", user);
  auto variant2 = *jcf.create_variant(cv2, "variant2", user);
  auto dobj = *jcf.create_design_object(variant, "schematic", vt_sch, user);
  auto dov1 = *jcf.create_dov(dobj, "netlist rev 1", user);
  auto dov2 = *jcf.create_dov(dobj, "netlist rev 2", user);
  auto sim_obj = *jcf.create_design_object(variant, "waves", vt_sim, user);
  auto exec = *jcf.start_activity(variant, enter, user);
  (void)jcf.complete_activity(exec, {dov2});
  auto exec2 = *jcf.start_activity(variant, simulate, user);
  auto sim_dov = *jcf.create_dov(sim_obj, "waveforms", user);
  (void)jcf.complete_activity(exec2, {sim_dov});  // Needs/Creates + derived
  (void)jcf.set_equivalent(dov1, dov2);
  auto config = *jcf.create_config(cv2, "golden");
  (void)jcf.add_config_member(config, dov2);
  (void)jcf.add_config_member(config, sim_dov);
  (void)jcf.publish(cv2, user);
  (void)variant2;
  (void)cv1;

  const auto& store = jcf.store();
  for (const char* cls :
       {"User", "Team", "Tool", "ViewType", "Activity", "Flow", "Project", "Cell",
        "CellVersion", "Variant", "DesignObject", "DesignObjectVersion", "Configuration",
        "ActivityExecution"}) {
    benchutil::row(std::string(cls) + ": " + std::to_string(store.objects_of(cls).size()) +
                   " object(s)");
  }
  benchutil::row("derived relations recorded: " +
                 std::to_string(jcf.derivation_sources(sim_dov)->size()) + " (simulate <- schematic)");
  benchutil::row("CompOf children of alu v2: " + std::to_string(jcf.children(cv2)->size()));
  benchutil::row("total OMS objects: " + std::to_string(store.object_count()));
}

// ---- metadata operation micro-benchmarks --------------------------------

struct JcfFixture {
  JcfFixture() : jcf(&clock) {
    user = *jcf.create_user("u");
    team = *jcf.create_team("t");
    (void)jcf.add_member(team, user);
    auto tool = *jcf.register_tool("tl");
    vt = *jcf.create_viewtype("v");
    auto act = *jcf.create_activity("a", tool, {}, {vt});
    flow = *jcf.create_flow("f", {act});
    (void)jcf.freeze_flow(flow);
    project = *jcf.create_project("p", team);
  }
  support::SimClock clock;
  jcf::JcfFramework jcf;
  jcf::UserRef user;
  jcf::TeamRef team;
  jcf::ViewTypeRef vt;
  jcf::FlowRef flow;
  jcf::ProjectRef project;
};

void BM_CreateCell(benchmark::State& state) {
  JcfFixture fx;
  std::uint64_t n = 0;
  for (auto _ : state) {
    auto cell = fx.jcf.create_cell(fx.project, "cell" + std::to_string(n++), fx.flow, fx.team);
    benchmark::DoNotOptimize(cell);
  }
}
BENCHMARK(BM_CreateCell)->Unit(benchmark::kMicrosecond);

void BM_CreateCellVersion(benchmark::State& state) {
  JcfFixture fx;
  auto cell = *fx.jcf.create_cell(fx.project, "c", fx.flow, fx.team);
  for (auto _ : state) {
    auto cv = fx.jcf.create_cell_version(cell, fx.user);
    benchmark::DoNotOptimize(cv);
  }
}
BENCHMARK(BM_CreateCellVersion)->Unit(benchmark::kMicrosecond);

void BM_CreateVariantAndDesignObject(benchmark::State& state) {
  JcfFixture fx;
  auto cell = *fx.jcf.create_cell(fx.project, "c", fx.flow, fx.team);
  auto cv = *fx.jcf.create_cell_version(cell, fx.user);
  (void)fx.jcf.reserve(cv, fx.user);
  std::uint64_t n = 0;
  for (auto _ : state) {
    auto variant = *fx.jcf.create_variant(cv, "var" + std::to_string(n++), fx.user);
    auto dobj = fx.jcf.create_design_object(variant, "d", fx.vt, fx.user);
    benchmark::DoNotOptimize(dobj);
  }
}
BENCHMARK(BM_CreateVariantAndDesignObject)->Unit(benchmark::kMicrosecond);

void BM_WorkspaceReservePublish(benchmark::State& state) {
  JcfFixture fx;
  auto cell = *fx.jcf.create_cell(fx.project, "c", fx.flow, fx.team);
  auto cv = *fx.jcf.create_cell_version(cell, fx.user);
  for (auto _ : state) {
    (void)fx.jcf.reserve(cv, fx.user);
    (void)fx.jcf.publish(cv, fx.user);
  }
}
BENCHMARK(BM_WorkspaceReservePublish)->Unit(benchmark::kMicrosecond);

void BM_ConfigMembership(benchmark::State& state) {
  JcfFixture fx;
  auto cell = *fx.jcf.create_cell(fx.project, "c", fx.flow, fx.team);
  auto cv = *fx.jcf.create_cell_version(cell, fx.user);
  (void)fx.jcf.reserve(cv, fx.user);
  auto variant = *fx.jcf.create_variant(cv, "w", fx.user);
  auto dobj = *fx.jcf.create_design_object(variant, "d", fx.vt, fx.user);
  auto dov = *fx.jcf.create_dov(dobj, "data", fx.user);
  std::uint64_t n = 0;
  for (auto _ : state) {
    auto config = *fx.jcf.create_config(cv, "cfg" + std::to_string(n++));
    (void)fx.jcf.add_config_member(config, dov);
  }
}
BENCHMARK(BM_ConfigMembership)->Unit(benchmark::kMicrosecond);

void BM_ConsistencySweep(benchmark::State& state) {
  JcfFixture fx;
  for (int c = 0; c < state.range(0); ++c) {
    auto cell = *fx.jcf.create_cell(fx.project, "c" + std::to_string(c), fx.flow, fx.team);
    auto cv = *fx.jcf.create_cell_version(cell, fx.user);
    (void)fx.jcf.reserve(cv, fx.user);
    auto variant = *fx.jcf.create_variant(cv, "w", fx.user);
    auto dobj = *fx.jcf.create_design_object(variant, "d", fx.vt, fx.user);
    (void)*fx.jcf.create_dov(dobj, "data", fx.user);
    (void)fx.jcf.publish(cv, fx.user);
  }
  for (auto _ : state) {
    auto problems = fx.jcf.check_consistency(fx.project);
    benchmark::DoNotOptimize(problems);
  }
  state.counters["cells"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ConsistencySweep)->Arg(10)->Arg(50)->Arg(200)->Unit(benchmark::kMicrosecond);

}  // namespace

JFM_BENCH_MAIN(print_report)
