// Section 3.5: flow management and derivation relations.
//
// Claims reproduced:
//  * "Standard FMCAD does not support flow management capabilities ...
//    neither derivation relations nor the what-belongs-to-what
//    information is available" -- derivation completeness is 0% natively
//    and 100% in the hybrid;
//  * the hybrid forces the prescribed flow: out-of-order invocations are
//    rejected (or force-executed behind a consistency window);
//  * the price is a bounded flow-management overhead per invocation.

#include "bench_util.hpp"

namespace {

using namespace jfm;

void print_report() {
  benchutil::header("s3.5: derivation-relation completeness after a full design pass");
  // The pass: schematic -> simulate -> layout on 4 cells. Each tool run
  // consumes one schematic version; 2 derivation facts per cell exist
  // ground-truth (simulate<-schematic, layout<-schematic).
  {
    benchutil::HybridEnv env;
    int ground_truth = 0;
    int recorded = 0;
    for (int c = 0; c < 4; ++c) {
      const std::string cell = "c" + std::to_string(c);
      env.make_cell(cell);
      (void)env.hybrid.run_activity("proj", cell, "enter_schematic", env.alice,
                                    benchutil::small_schematic_commands());
      (void)env.hybrid.run_activity("proj", cell, "simulate", env.alice,
                                    {{"set-dut", {cell, "schematic"}}, {"run", {}}});
      (void)env.hybrid.run_activity("proj", cell, "enter_layout", env.alice,
                                    {{"add-layer", {"m1"}},
                                     {"draw-rect", {"m1", "0", "0", "5", "5"}}});
      ground_truth += 2;
      auto rows = env.hybrid.derivation_report("proj", cell);
      if (rows.ok()) recorded += static_cast<int>(rows->size());
    }
    std::printf("  hybrid JCF-FMCAD: %d/%d derivation relations recorded (%.0f%%)\n", recorded,
                ground_truth, 100.0 * recorded / ground_truth);
    benchutil::row("hybrid sample row: \"" +
                   (*env.hybrid.derivation_report("proj", "c0"))[0] + "\"");
  }
  {
    // Native FMCAD: run the same tools by hand; ask for derivations.
    benchutil::FmcadEnv env;
    env.make_cellview("c0", "schematic");
    env.checkin({"c0", "schematic"}, "cvfile 1\ncellview c0 schematic schematic\npayload\n");
    env.make_cellview("c0", "layout");
    env.checkin({"c0", "layout"}, "cvfile 1\ncellview c0 layout layout\npayload\n");
    // FMCAD's metadata has no derivation object at all; nothing to query.
    benchutil::row("FMCAD alone:      0/2 derivation relations recorded (0%) -- the .meta "
                   "schema has no such object");
  }

  benchutil::header("s3.5: prescribed flow enforcement");
  {
    benchutil::HybridEnv env;
    env.make_cell("blk");
    auto premature = env.hybrid.run_activity("proj", "blk", "enter_layout", env.alice,
                                             {{"add-layer", {"m1"}}});
    benchutil::row(std::string("layout before schematic: ") +
                   (premature.ok() ? "ACCEPTED (bug!)"
                                   : "rejected (" +
                                         std::string(support::to_string(premature.error().code)) +
                                         ")"));
    (void)env.hybrid.run_activity("proj", "blk", "enter_schematic", env.alice,
                                  benchutil::small_schematic_commands());
    auto forced = env.hybrid.run_activity("proj", "blk", "enter_layout", env.alice,
                                          {{"add-layer", {"m1"}}}, /*force=*/true);
    benchutil::row("forced layout (simulate skipped): " +
                   std::string(forced.ok() ? "executed" : "failed") + ", " +
                   std::to_string(forced.ok() ? forced->consistency_windows.size() : 0) +
                   " consistency window(s) shown");
    benchutil::row("in native FMCAD any tool order is silently legal (no flow manager)");
  }
}

// ---- micro-benchmarks: flow-management overhead per invocation ------------

// Per-iteration edits must not grow the document, or the measurement
// depends on the iteration count: alternate renaming one net back and
// forth instead of adding nets.

// Native: tool work without any flow bookkeeping.
void BM_NativeToolInvocation(benchmark::State& state) {
  benchutil::FmcadEnv env;
  env.make_cellview("c", "schematic");
  env.checkin({"c", "schematic"},
              "cvfile 1\ncellview c schematic schematic\npayload\nnet n0\n");
  tools::SchematicTool tool;
  fmcad::ItcBus bus;
  extlang::Interpreter interp;
  bool flip = false;
  for (auto _ : state) {
    fmcad::ToolSession session(env.session.get(), &tool, &bus, &interp);
    if (!session.open({"c", "schematic"}, false).ok()) std::abort();
    (void)session.edit("rename-net", flip ? std::vector<std::string>{"n1", "n0"}
                                          : std::vector<std::string>{"n0", "n1"});
    flip = !flip;
    auto version = session.checkin();
    benchmark::DoNotOptimize(version);
  }
}
BENCHMARK(BM_NativeToolInvocation)->Unit(benchmark::kMicrosecond);

// Hybrid: the same edit through the full wrapper (flow checks, transfer,
// derivation recording).
void BM_HybridToolInvocation(benchmark::State& state) {
  benchutil::HybridEnv env;
  env.make_cell("c");
  (void)env.hybrid.run_activity("proj", "c", "enter_schematic", env.alice,
                                {{"add-net", {"n0"}}});
  bool flip = false;
  for (auto _ : state) {
    std::vector<coupling::ToolCommand> edits{
        {"rename-net", flip ? std::vector<std::string>{"n1", "n0"}
                            : std::vector<std::string>{"n0", "n1"}}};
    flip = !flip;
    auto run = env.hybrid.run_activity("proj", "c", "enter_schematic", env.alice, edits);
    benchmark::DoNotOptimize(run);
  }
}
BENCHMARK(BM_HybridToolInvocation)->Unit(benchmark::kMicrosecond);

void BM_DerivationQuery(benchmark::State& state) {
  benchutil::HybridEnv env;
  env.make_cell("c");
  (void)env.hybrid.run_activity("proj", "c", "enter_schematic", env.alice,
                                benchutil::small_schematic_commands());
  (void)env.hybrid.run_activity("proj", "c", "simulate", env.alice,
                                {{"set-dut", {"c", "schematic"}}, {"run", {}}});
  for (auto _ : state) {
    auto rows = env.hybrid.derivation_report("proj", "c");
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_DerivationQuery)->Unit(benchmark::kMicrosecond);

void BM_FlowViolationRejection(benchmark::State& state) {
  benchutil::HybridEnv env;
  env.make_cell("c");
  for (auto _ : state) {
    auto run = env.hybrid.run_activity("proj", "c", "enter_layout", env.alice,
                                       {{"add-layer", {"m1"}}});
    benchmark::DoNotOptimize(run);  // always a flow violation
  }
}
BENCHMARK(BM_FlowViolationRejection)->Unit(benchmark::kMicrosecond);

}  // namespace

JFM_BENCH_MAIN(print_report)
