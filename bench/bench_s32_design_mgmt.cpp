// Section 3.2: design management and data consistency.
//
// Paper claims reproduced here:
//  * "FMCAD offers a rather simple versioning mechanism, while
//    JCF-FMCAD provides a two-level versioning approach" -- we count
//    the addressable design states both sides can represent for the
//    same editing history;
//  * "hierarchy information stored in JCF metadata ... results in a
//    more powerful data consistency check" -- we inject faults and
//    compare what each side can detect.

#include "bench_util.hpp"
#include "jfm/fmcad/hierarchy.hpp"
#include "jfm/jcf/framework.hpp"

namespace {

using namespace jfm;

void print_report() {
  benchutil::header("s3.2: versioning levels for the same editing history");
  // History: 2 cell revisions; in the second one, 3 alternative variants;
  // the design object inside gets 2 data versions per variant.
  {
    support::SimClock clock;
    jcf::JcfFramework jcf(&clock);
    auto user = *jcf.create_user("u");
    auto team = *jcf.create_team("t");
    (void)jcf.add_member(team, user);
    auto tool = *jcf.register_tool("tl");
    auto vt = *jcf.create_viewtype("schematic");
    auto act = *jcf.create_activity("a", tool, {}, {vt});
    auto flow = *jcf.create_flow("f", {act});
    (void)jcf.freeze_flow(flow);
    auto project = *jcf.create_project("p", team);
    auto cell = *jcf.create_cell(project, "alu", flow, team);
    int jcf_states = 0;
    for (int v = 0; v < 2; ++v) {
      auto cv = *jcf.create_cell_version(cell, user);
      (void)jcf.reserve(cv, user);
      for (int k = 0; k < 3; ++k) {
        auto variant = *jcf.create_variant(cv, "opt" + std::to_string(k), user);
        auto dobj = *jcf.create_design_object(variant, "schematic", vt, user);
        for (int d = 0; d < 2; ++d) {
          (void)*jcf.create_dov(dobj, "data", user);
          ++jcf_states;  // (cell version, variant, dov) triple
        }
      }
      (void)jcf.publish(cv, user);
    }
    benchutil::row("hybrid (two-level): cell versions x variants x data versions = " +
                   std::to_string(jcf_states) + " addressable states");
  }
  {
    benchutil::FmcadEnv env;
    env.make_cellview("alu", "schematic");
    int fmcad_states = 0;
    for (int i = 0; i < 2 * 3 * 2; ++i) {
      env.checkin({"alu", "schematic"}, "rev");
      ++fmcad_states;
    }
    benchutil::row("FMCAD alone (flat):  a single linear chain of " +
                   std::to_string(fmcad_states) +
                   " cellview versions (variants/alternatives not expressible)");
  }

  benchutil::header("s3.2: consistency-fault detection");
  // Hybrid side: inject 3 metadata faults, run the project-wide sweep.
  {
    support::SimClock clock;
    jcf::JcfFramework jcf(&clock);
    auto user = *jcf.create_user("u");
    auto team = *jcf.create_team("t");
    (void)jcf.add_member(team, user);
    auto tool = *jcf.register_tool("tl");
    auto vt = *jcf.create_viewtype("schematic");
    auto act = *jcf.create_activity("a", tool, {}, {vt});
    auto flow = *jcf.create_flow("f", {act});
    (void)jcf.freeze_flow(flow);
    auto project = *jcf.create_project("p", team);
    int injected = 0;
    // fault type 1: published parent with unpublished child (x2)
    for (int i = 0; i < 2; ++i) {
      auto parent = *jcf.create_cell(project, "p" + std::to_string(i), flow, team);
      auto child = *jcf.create_cell(project, "c" + std::to_string(i), flow, team);
      auto pcv = *jcf.create_cell_version(parent, user);
      auto ccv = *jcf.create_cell_version(child, user);
      (void)jcf.add_child(pcv, ccv);
      (void)jcf.reserve(pcv, user);
      (void)jcf.publish(pcv, user);
      ++injected;
    }
    // fault type 2: severed version lineage
    auto cell = *jcf.create_cell(project, "alu", flow, team);
    auto cv = *jcf.create_cell_version(cell, user);
    (void)jcf.reserve(cv, user);
    auto variant = *jcf.create_variant(cv, "w", user);
    auto dobj = *jcf.create_design_object(variant, "schematic", vt, user);
    auto d1 = *jcf.create_dov(dobj, "a", user);
    auto d2 = *jcf.create_dov(dobj, "b", user);
    (void)jcf.store().unlink(jcf::rel::dov_precedes, d1.id, d2.id);
    ++injected;
    auto problems = jcf.check_consistency(project);
    benchutil::row("hybrid: injected " + std::to_string(injected) + " faults, sweep detected " +
                   std::to_string(problems.ok() ? problems->size() : 0) +
                   " (project-wide check available)");
  }
  // FMCAD side: a dangling hierarchy reference is tolerated silently;
  // there is no project-wide check to run at all.
  {
    benchutil::FmcadEnv env;
    env.make_cellview("top", "schematic");
    fmcad::DesignFile file;
    file.cell = "top";
    file.view = "schematic";
    file.viewtype = "schematic";
    file.uses = {{"ghost", "schematic"}};  // fault: reference to nothing
    env.checkin({"top", "schematic"}, file.serialize());
    fmcad::HierarchyBinder binder(env.library.get());
    auto bound = binder.expand({"top", "schematic"});
    benchutil::row(
        "FMCAD:  injected 1 dangling reference; library accepts the checkin "
        "(0 checks run); expansion later reports " +
        std::to_string(bound.ok() ? bound->dangling.size() : 0) +
        " dangling ref(s) only if a tool happens to bind that cellview");
  }
}

// ---- micro-benchmarks -------------------------------------------------------

void BM_TwoLevelVersionLookup(benchmark::State& state) {
  support::SimClock clock;
  jcf::JcfFramework jcf(&clock);
  auto user = *jcf.create_user("u");
  auto team = *jcf.create_team("t");
  (void)jcf.add_member(team, user);
  auto tool = *jcf.register_tool("tl");
  auto vt = *jcf.create_viewtype("v");
  auto act = *jcf.create_activity("a", tool, {}, {vt});
  auto flow = *jcf.create_flow("f", {act});
  (void)jcf.freeze_flow(flow);
  auto project = *jcf.create_project("p", team);
  auto cell = *jcf.create_cell(project, "c", flow, team);
  jcf::DesignObjectRef dobj;
  for (int v = 0; v < state.range(0); ++v) {
    auto cv = *jcf.create_cell_version(cell, user);
    (void)jcf.reserve(cv, user);
    auto variant = *jcf.create_variant(cv, "w", user);
    dobj = *jcf.create_design_object(variant, "d", vt, user);
    for (int k = 0; k < 4; ++k) (void)*jcf.create_dov(dobj, "x", user);
    (void)jcf.publish(cv, user);
  }
  for (auto _ : state) {
    auto cv = jcf.latest_cell_version(cell);
    auto variant = jcf.find_variant(*cv, "w");
    auto found = jcf.find_design_object(*variant, "d");
    auto dov = jcf.latest_dov(*found);
    benchmark::DoNotOptimize(dov);
  }
  state.counters["cell_versions"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_TwoLevelVersionLookup)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_FmcadFlatVersionLookup(benchmark::State& state) {
  benchutil::FmcadEnv env;
  env.make_cellview("c", "schematic");
  for (int v = 0; v < state.range(0); ++v) env.checkin({"c", "schematic"}, "x");
  for (auto _ : state) {
    const auto* record = env.library->meta().find_cellview({"c", "schematic"});
    benchmark::DoNotOptimize(record->default_version());
  }
  state.counters["versions"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_FmcadFlatVersionLookup)->Arg(4)->Arg(64)->Unit(benchmark::kMicrosecond);

}  // namespace

JFM_BENCH_MAIN(print_report)
