// Table 1: the JCF <-> FMCAD object mapping. The report prints the
// table exactly as the paper does and verifies a lossless round trip;
// the micro-benchmarks measure mapping throughput vs library size.

#include "bench_util.hpp"
#include "jfm/coupling/mapping.hpp"
#include "jfm/support/rng.hpp"

namespace {

using namespace jfm;

struct MapperEnv {
  MapperEnv() : fs(&clock), jcf(&clock) {
    (void)fs.mkdirs(vfs::Path().child("libs"));
    integrator = *jcf.create_user("integrator");
    team = *jcf.create_team("t");
    (void)jcf.add_member(team, integrator);
    auto tool = *jcf.register_tool("tl");
    auto vt = *jcf.create_viewtype("any");
    auto act = *jcf.create_activity("a", tool, {}, {vt});
    flow = *jcf.create_flow("f", {act});
    (void)jcf.freeze_flow(flow);
  }

  std::shared_ptr<fmcad::Library> make_library(const std::string& name, int cells,
                                               int versions_per_cv, std::size_t bytes) {
    auto lib = fmcad::Library::create(&fs, &clock, vfs::Path().child("libs"), name);
    if (!lib.ok()) std::abort();
    fmcad::DesignerSession session(*lib, "builder");
    (void)session.define_view("schematic", "schematic");
    (void)session.define_view("layout", "layout");
    support::Rng rng(7);
    for (int c = 0; c < cells; ++c) {
      const std::string cell = "cell" + std::to_string(c);
      (void)session.create_cell(cell);
      for (const char* view : {"schematic", "layout"}) {
        fmcad::CellViewKey key{cell, view};
        (void)session.create_cellview(key);
        for (int v = 0; v < versions_per_cv; ++v) {
          (void)session.checkout(key);
          (void)session.write_working(key, rng.identifier(bytes));
          (void)session.checkin(key);
        }
      }
    }
    return *lib;
  }

  support::SimClock clock;
  vfs::FileSystem fs;
  jcf::JcfFramework jcf;
  jcf::UserRef integrator;
  jcf::TeamRef team;
  jcf::FlowRef flow;
};

void print_report() {
  benchutil::header("Table 1: JCF - FMCAD mapping");
  std::printf("  %-22s %s\n", "JCF object", "FMCAD object");
  std::printf("  %-22s %s\n", "----------", "------------");
  for (const auto& row : coupling::mapping_table()) {
    std::printf("  %-22s %s\n", row.jcf_object.c_str(), row.fmcad_object.c_str());
  }

  // Round-trip verification on a concrete library.
  MapperEnv env;
  auto lib = env.make_library("src", 6, 3, 128);
  coupling::ModelMapper mapper(&env.jcf, env.integrator, env.team, env.flow);
  coupling::MappingStats stats;
  auto project = mapper.import_library(*lib, &stats);
  if (!project.ok()) {
    benchutil::row("IMPORT FAILED: " + project.error().to_text());
    return;
  }
  auto rebuilt = mapper.export_project(*project, &env.fs, &env.clock,
                                       vfs::Path().child("libs"), "dst", nullptr);
  auto diffs = rebuilt.ok() ? coupling::diff_libraries(*lib, **rebuilt)
                            : std::vector<std::string>{rebuilt.error().to_text()};
  benchutil::header("Round-trip check (FMCAD -> JCF -> FMCAD)");
  benchutil::row("cells mapped:             " + std::to_string(stats.cells));
  benchutil::row("views mapped:             " + std::to_string(stats.views));
  benchutil::row("cellviews mapped:         " + std::to_string(stats.cellviews));
  benchutil::row("cellview versions mapped: " + std::to_string(stats.versions));
  benchutil::row("design bytes moved:       " + std::to_string(stats.design_bytes));
  benchutil::row(diffs.empty() ? "round trip: LOSSLESS"
                               : "round trip: " + std::to_string(diffs.size()) + " differences");
}

void BM_ImportLibrary(benchmark::State& state) {
  std::uint64_t n = 0;
  for (auto _ : state) {
    state.PauseTiming();
    MapperEnv env;
    auto lib = env.make_library("lib" + std::to_string(n++), static_cast<int>(state.range(0)),
                                2, 128);
    coupling::ModelMapper mapper(&env.jcf, env.integrator, env.team, env.flow);
    state.ResumeTiming();
    auto project = mapper.import_library(*lib, nullptr);
    benchmark::DoNotOptimize(project);
  }
  state.counters["cells"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ImportLibrary)->Arg(2)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_ExportProject(benchmark::State& state) {
  MapperEnv env;
  auto lib = env.make_library("src", static_cast<int>(state.range(0)), 2, 128);
  coupling::ModelMapper mapper(&env.jcf, env.integrator, env.team, env.flow);
  auto project = mapper.import_library(*lib, nullptr);
  if (!project.ok()) std::abort();
  std::uint64_t n = 0;
  for (auto _ : state) {
    auto rebuilt = mapper.export_project(*project, &env.fs, &env.clock,
                                         vfs::Path().child("libs"),
                                         "exp" + std::to_string(n++), nullptr);
    benchmark::DoNotOptimize(rebuilt);
  }
  state.counters["cells"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ExportProject)->Arg(2)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_DiffLibraries(benchmark::State& state) {
  MapperEnv env;
  auto a = env.make_library("a", 8, 2, 256);
  auto b = env.make_library("b", 8, 2, 256);
  for (auto _ : state) {
    auto diffs = coupling::diff_libraries(*a, *b);
    benchmark::DoNotOptimize(diffs);
  }
}
BENCHMARK(BM_DiffLibraries)->Unit(benchmark::kMicrosecond);

}  // namespace

JFM_BENCH_MAIN(print_report)
