// Section 3.1: multi-user design and concurrency control.
//
// Paper claims reproduced here:
//  * FMCAD's single .meta per project forces explicit coordination and
//    "may cause severe locking problems";
//  * "in FMCAD parallel work on different versions of the same cellview
//    is not possible, the JCF-FMCAD framework provides this feature";
//  * JCF workspaces isolate cells, so the hybrid's conflict rate stays
//    low as the team grows.

#include "bench_util.hpp"
#include "jfm/workload/contention.hpp"

namespace {

using namespace jfm;

void print_report() {
  benchutil::header("s3.1: contention sweep (8 cells, 240 operations, designers = N)");
  std::printf("  %-10s | %-28s | %-28s\n", "", "FMCAD alone", "hybrid JCF-FMCAD");
  std::printf("  %-10s | %8s %8s %9s | %8s %8s %9s\n", "designers", "lockrej", "stale",
              "conflict%", "lockrej", "stale", "conflict%");
  for (int designers : {1, 2, 4, 8, 12}) {
    workload::ContentionParams params;
    params.designers = designers;
    params.cells = 8;
    params.operations = 240;
    auto fmcad = workload::run_fmcad_contention(params);
    auto hybrid = workload::run_hybrid_contention(params);
    if (!fmcad.ok() || !hybrid.ok()) {
      benchutil::row("scenario failed");
      return;
    }
    std::printf("  %-10d | %8llu %8llu %8.1f%% | %8llu %8llu %8.1f%%\n", designers,
                static_cast<unsigned long long>(fmcad->lock_conflicts),
                static_cast<unsigned long long>(fmcad->stale_conflicts),
                100.0 * fmcad->conflict_rate(),
                static_cast<unsigned long long>(hybrid->lock_conflicts),
                static_cast<unsigned long long>(hybrid->stale_conflicts),
                100.0 * hybrid->conflict_rate());
  }

  benchutil::header("s3.1: data sharing between projects");
  {
    // "Not yet possible in JCF or in the combined framework is data
    // sharing between projects" -- the prototype refuses; the future-
    // work extension grants read access to published cells.
    benchutil::HybridEnv paper_env;
    (void)paper_env.hybrid.create_project("ip");
    (void)paper_env.hybrid.create_cell("ip", "uart", paper_env.alice);
    (void)paper_env.hybrid.publish_cell("ip", "uart", paper_env.alice);
    auto refused = paper_env.hybrid.share_cell("proj", "ip", "uart");
    benchutil::row(std::string("paper prototype:   share_cell -> ") +
                   (refused.ok() ? "ok (?)" : std::string(support::to_string(refused.error().code))));
    coupling::HybridConfig config;
    config.allow_project_data_sharing = true;
    benchutil::HybridEnv future_env(config);
    (void)future_env.hybrid.create_project("ip");
    (void)future_env.hybrid.create_cell("ip", "uart", future_env.alice);
    (void)future_env.hybrid.publish_cell("ip", "uart", future_env.alice);
    auto granted = future_env.hybrid.share_cell("proj", "ip", "uart");
    benchutil::row(std::string("future extension:  share_cell -> ") +
                   (granted.ok() ? "ok (published cell readable across projects)"
                                 : granted.error().to_text()));
  }

  benchutil::header("s3.1: parallel editors of the SAME design object");
  workload::ContentionParams params;
  params.designers = 6;
  params.cells = 4;
  params.operations = 60;
  auto fmcad = workload::run_fmcad_contention(params);
  auto hybrid = workload::run_hybrid_contention(params);
  if (fmcad.ok() && hybrid.ok()) {
    benchutil::row("FMCAD alone:      " + std::to_string(fmcad->parallel_editors_same_object) +
                   " editor(s)  (one checkout per cellview, hard limit)");
    benchutil::row("hybrid JCF-FMCAD: " + std::to_string(hybrid->parallel_editors_same_object) +
                   " editor(s)  (one JCF cell version per designer)");
  }
}

void BM_FmcadContention(benchmark::State& state) {
  workload::ContentionParams params;
  params.designers = static_cast<int>(state.range(0));
  params.cells = 8;
  params.operations = 120;
  for (auto _ : state) {
    auto result = workload::run_fmcad_contention(params);
    benchmark::DoNotOptimize(result);
    if (result.ok()) {
      state.counters["conflict_rate"] = result->conflict_rate();
    }
  }
  state.counters["designers"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_FmcadContention)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_HybridContention(benchmark::State& state) {
  workload::ContentionParams params;
  params.designers = static_cast<int>(state.range(0));
  params.cells = 8;
  params.operations = 120;
  for (auto _ : state) {
    auto result = workload::run_hybrid_contention(params);
    benchmark::DoNotOptimize(result);
    if (result.ok()) {
      state.counters["conflict_rate"] = result->conflict_rate();
    }
  }
  state.counters["designers"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_HybridContention)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// Workspace reservation itself is a metadata operation -- cheap.
void BM_ReservationConflictCheck(benchmark::State& state) {
  benchutil::HybridEnv env;
  env.make_cell("c0");
  auto bob = *env.hybrid.add_designer("bob");
  for (auto _ : state) {
    auto st = env.hybrid.reserve_cell("proj", "c0", bob);  // always conflicts
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_ReservationConflictCheck)->Unit(benchmark::kMicrosecond);

}  // namespace

JFM_BENCH_MAIN(print_report)
