// Section 3.3: handling of design hierarchies (the hardest part of the
// encapsulation, per the paper).
//
// Claims reproduced:
//  * the prototype requires ALL hierarchy relations to be submitted
//    manually via the JCF desktop before the design starts -- we count
//    those desktop steps as hierarchy size grows;
//  * the future-work "procedural interface" removes the manual steps
//    (ablation);
//  * isomorphic hierarchies pass; non-isomorphic ones are rejected by
//    JCF 3.0 and admitted only with the future-JCF extension.

#include "bench_util.hpp"
#include "jfm/workload/generators.hpp"

namespace {

using namespace jfm;

// Build the design, then (non-isomorphic scenario) run a layout on the
// top cell that skips one schematic child.
support::Result<bool> try_diverged_layout(coupling::HybridFramework& hybrid,
                                          jcf::UserRef user) {
  // bottom-up: give every cell a layout matching its schematic except
  // the top, which places only the FIRST child (diverged hierarchy)
  auto cells = workload::hierarchy_cell_names({.depth = 1, .fanout = 2, .leaf_gates = 2});
  for (const auto& cell : cells) {
    if (!hybrid.reserve_cell("proj", cell, user).ok()) {
      // already reserved during build; fine
    }
    std::vector<coupling::ToolCommand> edits = {{"add-layer", {"metal1"}}};
    if (cell == "top") {
      edits.push_back({"add-instance", {"i0", cells[0], "layout", "0", "0"}});
      // NOTE: second child deliberately missing -> non-isomorphic
    } else {
      edits.push_back({"draw-rect", {"metal1", "0", "0", "10", "10"}});
    }
    // run simulate first so the flow admits the layout step
    auto sim = hybrid.run_activity("proj", cell, "simulate", user,
                                   {{"set-dut", {cell, "schematic"}}, {"run", {}}});
    if (!sim.ok()) return support::Result<bool>::failure(sim.error().code, sim.error().message);
    auto run = hybrid.run_activity("proj", cell, "enter_layout", user, edits);
    if (cell == "top") {
      if (run.ok()) return true;  // accepted (extension on)
      if (run.error().code == support::Errc::not_supported) return false;  // rejected
      return support::Result<bool>::failure(run.error().code, run.error().message);
    }
    if (!run.ok()) return support::Result<bool>::failure(run.error().code, run.error().message);
    if (!hybrid.publish_cell("proj", cell, user).ok()) {
      // top stays reserved; children published
    }
  }
  return false;
}

void print_report() {
  benchutil::header("s3.3: manual hierarchy submission cost (desktop steps)");
  std::printf("  %-22s | %6s | %13s | %16s\n", "hierarchy (depth,fan)", "cells",
              "manual steps", "procedural calls");
  for (auto [depth, fanout] : std::vector<std::pair<int, int>>{{1, 2}, {2, 2}, {2, 3}, {3, 2}}) {
    workload::HierarchySpec spec;
    spec.depth = depth;
    spec.fanout = fanout;
    spec.leaf_gates = 2;
    // manual mode
    benchutil::HybridEnv manual_env;
    auto top = workload::build_hierarchical_design(manual_env.hybrid, "proj", spec,
                                                   manual_env.alice);
    if (!top.ok()) {
      benchutil::row("build failed: " + top.error().to_text());
      continue;
    }
    // procedural mode (future work): same design, no desktop walking
    coupling::HybridConfig config;
    config.procedural_hierarchy_interface = true;
    benchutil::HybridEnv proc_env(config);
    (void)workload::build_hierarchical_design(proc_env.hybrid, "proj", spec, proc_env.alice);
    std::printf("  depth=%d fanout=%-9d | %6zu | %13llu | %16llu\n", depth, fanout,
                workload::hierarchy_cell_names(spec).size(),
                static_cast<unsigned long long>(
                    manual_env.hybrid.hierarchy().stats().desktop_steps),
                static_cast<unsigned long long>(
                    proc_env.hybrid.hierarchy().stats().procedural_calls));
  }

  benchutil::header("s3.3: non-isomorphic hierarchies (schematic vs layout)");
  for (bool allow : {false, true}) {
    coupling::HybridConfig config;
    config.procedural_hierarchy_interface = true;  // isolate the isomorphism question
    config.allow_non_isomorphic = allow;
    benchutil::HybridEnv env(config);
    workload::HierarchySpec spec;
    spec.depth = 1;
    spec.fanout = 2;
    spec.leaf_gates = 2;
    auto top = workload::build_hierarchical_design(env.hybrid, "proj", spec, env.alice);
    if (!top.ok()) {
      benchutil::row("build failed: " + top.error().to_text());
      continue;
    }
    auto accepted = try_diverged_layout(env.hybrid, env.alice);
    std::string label = allow ? "future JCF (extension on): " : "JCF 3.0 (paper):           ";
    if (!accepted.ok()) {
      benchutil::row(label + "error: " + accepted.error().to_text());
    } else {
      benchutil::row(label + (*accepted ? "diverged layout ACCEPTED" : "diverged layout REJECTED (not_supported)"));
    }
  }
}

// ---- micro-benchmarks -------------------------------------------------------

void BM_BuildHierarchicalDesign(benchmark::State& state) {
  workload::HierarchySpec spec;
  spec.depth = static_cast<int>(state.range(0));
  spec.fanout = 2;
  spec.leaf_gates = 2;
  for (auto _ : state) {
    state.PauseTiming();
    benchutil::HybridEnv env;
    state.ResumeTiming();
    auto top = workload::build_hierarchical_design(env.hybrid, "proj", spec, env.alice);
    benchmark::DoNotOptimize(top);
  }
  state.counters["cells"] = static_cast<double>(workload::hierarchy_cell_names(spec).size());
}
BENCHMARK(BM_BuildHierarchicalDesign)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

void BM_FmcadDynamicBinding(benchmark::State& state) {
  benchutil::FmcadEnv env;
  support::Rng rng(11);
  workload::HierarchySpec spec;
  spec.depth = static_cast<int>(state.range(0));
  spec.fanout = 2;
  spec.leaf_gates = 2;
  auto top = workload::build_hierarchical_library(*env.session, spec, rng);
  if (!top.ok()) std::abort();
  fmcad::HierarchyBinder binder(env.library.get());
  for (auto _ : state) {
    auto bound = binder.expand({*top, "schematic"});
    benchmark::DoNotOptimize(bound);
  }
  state.counters["cells"] = static_cast<double>(workload::hierarchy_cell_names(spec).size());
}
BENCHMARK(BM_FmcadDynamicBinding)->Arg(2)->Arg(4)->Arg(6)->Unit(benchmark::kMicrosecond);

void BM_IsomorphismCheck(benchmark::State& state) {
  benchutil::FmcadEnv env;
  support::Rng rng(12);
  workload::HierarchySpec spec;
  spec.depth = 3;
  spec.fanout = 2;
  spec.leaf_gates = 2;
  auto top = workload::build_hierarchical_library(*env.session, spec, rng);
  if (!top.ok()) std::abort();
  fmcad::HierarchyBinder binder(env.library.get());
  for (auto _ : state) {
    auto sig = binder.signature({*top, "schematic"});
    benchmark::DoNotOptimize(sig);
  }
}
BENCHMARK(BM_IsomorphismCheck)->Unit(benchmark::kMicrosecond);

}  // namespace

JFM_BENCH_MAIN(print_report)
