// Fault-tolerance cost and recovery behaviour (docs/fault-injection.md).
//
// Three questions, one workload (the same 64-DOV / 128 KiB-payload
// hierarchy as bench_parallel_checkout, workers=4):
//
//   * disabled_warm  -- what does the fault-tolerant export path cost
//     when injection is OFF? The hook points collapse to one relaxed
//     atomic load each, so this must match bench_parallel_checkout's
//     warm number (run_benches.py --check-fault-overhead gates the
//     ratio at 2%).
//   * armed_zero_warm -- the same warm batch with the injector ARMED
//     on every export-path site at rate 0: the full site-match +
//     ordinal-draw + decision machinery runs on every hook, nothing
//     fails. The armed_ratio quantifies what tests pay for injection.
//   * recovery       -- a hybrid checkout under a 20% export-fault
//     schedule, retried until clean: wall time to convergence plus the
//     retry / rollback / injected-fault counts that land in
//     BENCH_bench_fault_recovery.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "jfm/coupling/transfer.hpp"
#include "jfm/support/faultsim.hpp"
#include "jfm/support/rng.hpp"
#include "jfm/workload/generators.hpp"

namespace {

using namespace jfm;
namespace faultsim = support::faultsim;

constexpr int kCells = 16;
constexpr int kViews = 4;
constexpr int kDovs = kCells * kViews;
constexpr std::size_t kPayloadBytes = 128 * 1024;
constexpr std::size_t kWorkers = 4;
constexpr int kReps = 5;

/// The bench_parallel_checkout world: kDovs seeded design object
/// versions behind one JCF framework. Kept byte-identical (same rng
/// seed, same payload sizes) so the overhead gate compares like with
/// like across the two binaries.
struct CheckoutEnv {
  support::SimClock clock;
  vfs::FileSystem fs{&clock};
  jcf::JcfFramework jcf{&clock};
  jcf::UserRef user;
  std::vector<jcf::DovRef> dovs;
  std::uint64_t payload_bytes = 0;

  CheckoutEnv() {
    if (!fs.mkdirs(vfs::Path().child("out")).ok()) std::abort();
    user = *jcf.create_user("alice");
    auto team = *jcf.create_team("rtl");
    if (!jcf.add_member(team, user).ok()) std::abort();
    auto tool = *jcf.register_tool("editor");
    auto made = *jcf.create_viewtype("made");
    auto act = *jcf.create_activity("edit", tool, {}, {made});
    auto flow = *jcf.create_flow("f", {act});
    if (!jcf.freeze_flow(flow).ok()) std::abort();
    auto project = *jcf.create_project("p", team);
    std::vector<jcf::ViewTypeRef> views;
    for (int v = 0; v < kViews; ++v) {
      views.push_back(*jcf.create_viewtype("view" + std::to_string(v)));
    }
    support::Rng rng(42);
    for (int c = 0; c < kCells; ++c) {
      auto cell = *jcf.create_cell(project, "cell" + std::to_string(c), flow, team);
      auto cv = *jcf.create_cell_version(cell, user);
      if (!jcf.reserve(cv, user).ok()) std::abort();
      auto variant = *jcf.create_variant(cv, "work", user);
      for (int v = 0; v < kViews; ++v) {
        auto dobj = *jcf.create_design_object(
            variant, "c" + std::to_string(c) + "v" + std::to_string(v),
            views[static_cast<std::size_t>(v)], user);
        std::string payload = workload::schematic_payload_of_size(rng, kPayloadBytes);
        payload_bytes += payload.size();
        dovs.push_back(*jcf.create_dov(dobj, std::move(payload), user));
      }
    }
  }

  std::vector<coupling::ExportRequest> requests(const std::string& tag) const {
    std::vector<coupling::ExportRequest> items;
    for (std::size_t i = 0; i < dovs.size(); ++i) {
      items.push_back({dovs[i], user,
                       vfs::Path().child("out").child(tag + "_" + std::to_string(i))});
    }
    return items;
  }
};

std::uint64_t time_batch_us(coupling::TransferEngine& engine,
                            const std::vector<coupling::ExportRequest>& items) {
  const auto start = std::chrono::steady_clock::now();
  auto results = engine.export_batch(items, kWorkers);
  const auto end = std::chrono::steady_clock::now();
  for (const auto& st : results) {
    if (!st.ok()) std::abort();  // the warm workload must be all-green
  }
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(end - start).count());
}

void emit(const char* mode, std::uint64_t wall_us, std::uint64_t retries,
          std::uint64_t rollbacks, std::uint64_t injected) {
  std::printf("JFM_FAULT_RECOVERY mode=%s workers=%zu wall_us=%llu retries=%llu "
              "rollbacks=%llu injected=%llu\n",
              mode, kWorkers, static_cast<unsigned long long>(wall_us),
              static_cast<unsigned long long>(retries),
              static_cast<unsigned long long>(rollbacks),
              static_cast<unsigned long long>(injected));
}

void print_report() {
  benchutil::header("fault recovery: injection overhead + checkout convergence");
  faultsim::Injector::global().disarm();
  char line[256];
  auto& registry = support::telemetry::Registry::global();

  // -- warm-path overhead, injection disabled vs armed-at-rate-0 ----------
  CheckoutEnv env;
  coupling::TransferOptions options;
  options.copy_through_filesystem = true;
  options.content_addressed_cache = true;
  options.cache_capacity = 2 * kDovs;
  coupling::TransferEngine engine(&env.jcf, &env.fs, vfs::Path().child("xfer"), options);
  auto items = env.requests("w");
  (void)time_batch_us(engine, items);  // prime destinations + cache

  std::uint64_t disabled_us = ~0ull;
  for (int rep = 0; rep < kReps; ++rep) {
    disabled_us = std::min(disabled_us, time_batch_us(engine, items));
  }

  auto plan = faultsim::parse_plan(
      "seed=1;transfer.export_item=0;vfs.read=0;vfs.write=0;vfs.copy=0");
  if (!plan.ok()) std::abort();
  faultsim::Injector::global().arm(std::move(*plan));
  std::uint64_t armed_us = ~0ull;
  for (int rep = 0; rep < kReps; ++rep) {
    armed_us = std::min(armed_us, time_batch_us(engine, items));
  }
  faultsim::Injector::global().disarm();

  const double armed_ratio =
      disabled_us == 0 ? 1.0 : static_cast<double>(armed_us) / static_cast<double>(disabled_us);
  std::snprintf(line, sizeof(line),
                "warm batch (%d DOVs, workers=%zu): disarmed %6llu us, armed@rate0 %6llu us "
                "(%.2fx)",
                kDovs, kWorkers, static_cast<unsigned long long>(disabled_us),
                static_cast<unsigned long long>(armed_us), armed_ratio);
  benchutil::row(line);
  emit("disabled_warm", disabled_us, 0, 0, 0);
  emit("armed_zero_warm", armed_us, 0, 0, 0);
  registry.gauge("bench.fault_recovery.disabled_warm.us")
      .set(static_cast<std::int64_t>(disabled_us));
  registry.gauge("bench.fault_recovery.armed_zero_warm.us")
      .set(static_cast<std::int64_t>(armed_us));

  // -- recovery convergence under a 20% export-fault schedule -------------
  benchutil::HybridEnv world;
  coupling::HybridConfig config;  // (HybridEnv defaults: cache off, like the paper)
  (void)config;
  for (const char* cell : {"top", "alu", "regfile"}) {
    world.make_cell(cell);
    auto run = world.hybrid.run_activity("proj", cell, "enter_schematic", world.alice,
                                         benchutil::small_schematic_commands());
    if (!run.ok()) std::abort();
  }
  if (!world.hybrid.declare_child("proj", "top", "alu").ok()) std::abort();
  if (!world.hybrid.declare_child("proj", "top", "regfile").ok()) std::abort();

  // seed 4 front-loads injections (3 in the first 6 draws), so the
  // convergence loop always exercises real retries, not a lucky pass
  auto recovery_plan = faultsim::parse_plan("seed=4;transfer.export_item=0.2");
  if (!recovery_plan.ok()) std::abort();
  faultsim::Injector::global().arm(std::move(*recovery_plan));
  std::uint64_t retries = 0, rollbacks = 0;
  int attempts = 0;
  const auto start = std::chrono::steady_clock::now();
  for (; attempts < 20; ++attempts) {
    auto report = world.hybrid.checkout_hierarchy(
        "proj", "top", world.alice, vfs::Path().child("scratch").child("co"), kWorkers);
    if (!report.ok()) continue;
    retries += report->retries;
    if (report->rolled_back) ++rollbacks;
    if (report->failures.empty()) break;
  }
  const auto wall_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                            start)
          .count());
  const std::uint64_t injected = faultsim::Injector::global().injected();
  faultsim::Injector::global().disarm();
  std::snprintf(line, sizeof(line),
                "recovery @20%% faults: converged after %d attempt(s) in %llu us "
                "(%llu retries, %llu rollbacks, %llu faults injected)",
                attempts + 1, static_cast<unsigned long long>(wall_us),
                static_cast<unsigned long long>(retries),
                static_cast<unsigned long long>(rollbacks),
                static_cast<unsigned long long>(injected));
  benchutil::row(line);
  emit("recovery", wall_us, retries, rollbacks, injected);
  registry.gauge("bench.fault_recovery.recovery.us").set(static_cast<std::int64_t>(wall_us));
  registry.gauge("bench.fault_recovery.recovery.retries")
      .set(static_cast<std::int64_t>(retries));
  registry.gauge("bench.fault_recovery.recovery.rollbacks")
      .set(static_cast<std::int64_t>(rollbacks));

  std::printf("JFM_FAULT_RECOVERY_META workers=%zu dovs=%d payload_bytes=%llu "
              "armed_ratio=%.3f\n",
              kWorkers, kDovs, static_cast<unsigned long long>(env.payload_bytes), armed_ratio);
}

// -- google-benchmark micro-timings ----------------------------------------

/// The disarmed hook itself: one relaxed load. This is the entire cost
/// the data path pays when no plan is armed.
void BM_DisarmedTrip(benchmark::State& state) {
  faultsim::Injector::global().disarm();
  for (auto _ : state) {
    auto st = faultsim::trip("vfs.write");
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_DisarmedTrip);

/// The armed hook at rate 0: site match + ordinal draw + decision.
void BM_ArmedZeroRateTrip(benchmark::State& state) {
  auto plan = faultsim::parse_plan("seed=1;vfs.write=0");
  if (!plan.ok()) std::abort();
  faultsim::Injector::global().arm(std::move(*plan));
  for (auto _ : state) {
    auto st = faultsim::trip("vfs.write");
    benchmark::DoNotOptimize(st);
  }
  faultsim::Injector::global().disarm();
}
BENCHMARK(BM_ArmedZeroRateTrip);

}  // namespace

JFM_BENCH_MAIN(print_report)
