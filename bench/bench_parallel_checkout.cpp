// Parallel checkout scaling: does export_batch actually get faster
// with more workers now that the transfer path takes reader locks end
// to end (engine -> store -> file system)?
//
// The workload is a 64-DOV hierarchy (16 cells x 4 views) with ~128 KiB
// schematic payloads, checked out via TransferEngine::export_batch at
// workers in {1, 2, 4, 8}:
//   * cold  -- fresh engine + empty destinations: every byte moves;
//   * warm  -- same engine, same destinations: the content-addressed
//              cache answers with hash probes, no payloads move;
//   * excl  -- the exclusive_transfers ablation at 8 workers: the old
//              one-big-mutex behaviour, for the rw-vs-exclusive delta.
//
// Speedups are relative to workers=1 of the same mode. On a single-core
// host real threads cannot beat 1.0x (scripts/run_benches.py gates
// scaling core-awarely); the shape to reproduce on multi-core hardware
// is cold-cache scaling that tracks the core count until the short
// exclusive publish sections in the vfs dominate. The engine's
// serialization cost is visible directly in the
// coupling.transfer.lock_wait.us histogram in the JFM_METRICS blob.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "jfm/coupling/hybrid.hpp"
#include "jfm/coupling/transfer.hpp"
#include "jfm/support/rng.hpp"
#include "jfm/workload/generators.hpp"

namespace {

using namespace jfm;

constexpr int kCells = 16;
constexpr int kViews = 4;
constexpr int kDovs = kCells * kViews;
constexpr std::size_t kPayloadBytes = 128 * 1024;
constexpr int kReps = 3;

/// One complete JCF world with kDovs seeded design object versions.
/// `cow_on` selects the file system's extent mode (docs/vfs-cow.md);
/// false is the physical-duplication ablation.
struct CheckoutEnv {
  support::SimClock clock;
  vfs::FileSystem fs;
  jcf::JcfFramework jcf{&clock};
  jcf::UserRef user;
  std::vector<jcf::DovRef> dovs;
  std::uint64_t payload_bytes = 0;

  explicit CheckoutEnv(bool cow_on = true)
      : fs(&clock, vfs::FsOptions{.cow_extents = cow_on}) {
    if (!fs.mkdirs(vfs::Path().child("out")).ok()) std::abort();
    user = *jcf.create_user("alice");
    auto team = *jcf.create_team("rtl");
    if (!jcf.add_member(team, user).ok()) std::abort();
    auto tool = *jcf.register_tool("editor");
    auto made = *jcf.create_viewtype("made");
    auto act = *jcf.create_activity("edit", tool, {}, {made});
    auto flow = *jcf.create_flow("f", {act});
    if (!jcf.freeze_flow(flow).ok()) std::abort();
    auto project = *jcf.create_project("p", team);
    std::vector<jcf::ViewTypeRef> views;
    for (int v = 0; v < kViews; ++v) {
      views.push_back(*jcf.create_viewtype("view" + std::to_string(v)));
    }
    support::Rng rng(42);
    for (int c = 0; c < kCells; ++c) {
      auto cell = *jcf.create_cell(project, "cell" + std::to_string(c), flow, team);
      auto cv = *jcf.create_cell_version(cell, user);
      if (!jcf.reserve(cv, user).ok()) std::abort();
      auto variant = *jcf.create_variant(cv, "work", user);
      for (int v = 0; v < kViews; ++v) {
        auto dobj = *jcf.create_design_object(
            variant, "c" + std::to_string(c) + "v" + std::to_string(v),
            views[static_cast<std::size_t>(v)], user);
        std::string payload = workload::schematic_payload_of_size(rng, kPayloadBytes);
        payload_bytes += payload.size();
        dovs.push_back(*jcf.create_dov(dobj, std::move(payload), user));
      }
    }
  }

  std::vector<coupling::ExportRequest> requests(const std::string& tag) const {
    std::vector<coupling::ExportRequest> items;
    for (std::size_t i = 0; i < dovs.size(); ++i) {
      items.push_back({dovs[i], user,
                       vfs::Path().child("out").child(tag + "_" + std::to_string(i))});
    }
    return items;
  }
};

std::uint64_t time_batch_us(coupling::TransferEngine& engine,
                            const std::vector<coupling::ExportRequest>& items,
                            std::size_t workers) {
  const auto start = std::chrono::steady_clock::now();
  auto results = engine.export_batch(items, workers);
  const auto end = std::chrono::steady_clock::now();
  for (const auto& st : results) {
    if (!st.ok()) std::abort();  // the bench workload must be all-green
  }
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(end - start).count());
}

struct Sample {
  std::size_t workers = 0;
  std::uint64_t cold_us = 0;
  std::uint64_t warm_us = 0;
};

/// min-of-kReps timing for one worker count. Each rep gets a fresh
/// engine and a fresh destination tag, so cold really is cold.
Sample measure(CheckoutEnv& env, std::size_t workers, bool exclusive, int* tag_counter) {
  Sample s;
  s.workers = workers;
  s.cold_us = ~0ull;
  s.warm_us = ~0ull;
  coupling::TransferOptions options;
  options.copy_through_filesystem = true;
  options.content_addressed_cache = true;
  options.cache_capacity = 2 * kDovs;
  options.exclusive_transfers = exclusive;
  for (int rep = 0; rep < kReps; ++rep) {
    const std::string tag =
        (exclusive ? "x" : "w") + std::to_string(workers) + "_" + std::to_string((*tag_counter)++);
    coupling::TransferEngine engine(&env.jcf, &env.fs,
                                    vfs::Path().child("xfer_" + tag), options);
    auto items = env.requests(tag);
    s.cold_us = std::min(s.cold_us, time_batch_us(engine, items, workers));
    // warm: same engine, same destinations -> pure cache-hit traffic
    s.warm_us = std::min(s.warm_us, time_batch_us(engine, items, workers));
  }
  return s;
}

void print_report() {
  benchutil::header("parallel checkout: export_batch scaling (reader-writer locks)");
  CheckoutEnv env;
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  benchutil::row("hierarchy: " + std::to_string(kCells) + " cells x " + std::to_string(kViews) +
                 " views = " + std::to_string(kDovs) + " DOVs, " +
                 std::to_string(env.payload_bytes / 1024) + " KiB total, cores=" +
                 std::to_string(cores));

  int tag_counter = 0;
  std::vector<Sample> samples;
  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    samples.push_back(measure(env, workers, /*exclusive=*/false, &tag_counter));
  }
  const Sample exclusive8 = measure(env, 8, /*exclusive=*/true, &tag_counter);

  auto mbps = [&](std::uint64_t us) {
    return us == 0 ? 0.0 : static_cast<double>(env.payload_bytes) / static_cast<double>(us);
  };
  auto& registry = support::telemetry::Registry::global();
  char line[256];
  for (const auto& s : samples) {
    const double cold_speedup =
        static_cast<double>(samples.front().cold_us) / static_cast<double>(s.cold_us);
    const double warm_speedup =
        static_cast<double>(samples.front().warm_us) / static_cast<double>(s.warm_us);
    std::snprintf(line, sizeof(line),
                  "workers=%zu  cold %8llu us (%6.1f MB/s, %4.2fx)   warm %8llu us (%4.2fx)",
                  s.workers, static_cast<unsigned long long>(s.cold_us), mbps(s.cold_us),
                  cold_speedup, static_cast<unsigned long long>(s.warm_us), warm_speedup);
    benchutil::row(line);
    // machine-readable: one line per (workers, mode) + registry gauges,
    // both consumed by scripts/run_benches.py
    std::printf("JFM_PARALLEL_CHECKOUT workers=%zu mode=cold wall_us=%llu bytes=%llu speedup=%.3f\n",
                s.workers, static_cast<unsigned long long>(s.cold_us),
                static_cast<unsigned long long>(env.payload_bytes), cold_speedup);
    std::printf("JFM_PARALLEL_CHECKOUT workers=%zu mode=warm wall_us=%llu bytes=%llu speedup=%.3f\n",
                s.workers, static_cast<unsigned long long>(s.warm_us),
                static_cast<unsigned long long>(env.payload_bytes), warm_speedup);
    const std::string prefix = "bench.parallel_checkout.w" + std::to_string(s.workers);
    registry.gauge(prefix + ".cold.us").set(static_cast<std::int64_t>(s.cold_us));
    registry.gauge(prefix + ".warm.us").set(static_cast<std::int64_t>(s.warm_us));
  }
  const double excl_ratio =
      static_cast<double>(exclusive8.cold_us) / static_cast<double>(samples.back().cold_us);
  std::snprintf(line, sizeof(line),
                "workers=8 exclusive-lock ablation: cold %8llu us (%4.2fx the rw-lock time)",
                static_cast<unsigned long long>(exclusive8.cold_us), excl_ratio);
  benchutil::row(line);

  // COW-off ablation (docs/vfs-cow.md): the same checkout with the file
  // system physically duplicating every copy. Bit-identical results;
  // the delta is the payload memcpy the COW path never pays.
  CheckoutEnv nocow_env(/*cow_on=*/false);
  int nocow_tags = 0;
  for (std::size_t workers : {1u, 8u}) {
    const Sample s = measure(nocow_env, workers, /*exclusive=*/false, &nocow_tags);
    std::snprintf(line, sizeof(line),
                  "workers=%zu cow-off ablation: cold %8llu us   warm %8llu us",
                  s.workers, static_cast<unsigned long long>(s.cold_us),
                  static_cast<unsigned long long>(s.warm_us));
    benchutil::row(line);
    std::printf(
        "JFM_PARALLEL_CHECKOUT workers=%zu mode=cold_nocow wall_us=%llu bytes=%llu speedup=1.0\n",
        s.workers, static_cast<unsigned long long>(s.cold_us),
        static_cast<unsigned long long>(nocow_env.payload_bytes));
    std::printf(
        "JFM_PARALLEL_CHECKOUT workers=%zu mode=warm_nocow wall_us=%llu bytes=%llu speedup=1.0\n",
        s.workers, static_cast<unsigned long long>(s.warm_us),
        static_cast<unsigned long long>(nocow_env.payload_bytes));
    registry.gauge("bench.parallel_checkout.nocow.w" + std::to_string(s.workers) + ".cold.us")
        .set(static_cast<std::int64_t>(s.cold_us));
  }
  const auto cow_io = env.fs.counters();
  const auto nocow_io = nocow_env.fs.counters();
  std::snprintf(line, sizeof(line),
                "physical copy bytes across the whole run: cow %llu vs ablation %llu%s",
                static_cast<unsigned long long>(cow_io.bytes_physical_copied),
                static_cast<unsigned long long>(nocow_io.bytes_physical_copied),
                cow_io.bytes_physical_copied == 0 ? " (cow duplicated nothing)" : " UNEXPECTED");
  benchutil::row(line);
  if (cow_io.bytes_physical_copied != 0) std::abort();
  std::printf("JFM_PARALLEL_CHECKOUT_META cores=%u dovs=%d payload_bytes=%llu "
              "exclusive8_cold_us=%llu\n",
              cores, kDovs, static_cast<unsigned long long>(env.payload_bytes),
              static_cast<unsigned long long>(exclusive8.cold_us));
  registry.gauge("bench.parallel_checkout.cores").set(static_cast<std::int64_t>(cores));
  registry.gauge("bench.parallel_checkout.exclusive8.cold.us")
      .set(static_cast<std::int64_t>(exclusive8.cold_us));
}

// -- end-to-end checkout_hierarchy: cold vs warm ---------------------------
//
// The zero-rehash claim, measured where users feel it: a repeat
// checkout of an unchanged hierarchy must (a) read and hash ZERO
// payload bytes -- the fingerprint memo chain (oms memo -> dov
// fingerprint -> transfer cache probe -> fs hash memo) answers
// everything -- and (b) beat the cold checkout by >= 2x
// (scripts/run_benches.py --check-warm-speedup gates the hier_cold /
// hier_warm rows below in CI). Property (a) is asserted right here so
// a regression fails the bench itself, not just the gate.

std::vector<coupling::ToolCommand> hierarchy_schematic(int gates) {
  std::vector<coupling::ToolCommand> cmds;
  cmds.push_back({"add-port", {"a", "in"}});
  cmds.push_back({"add-port", {"y", "out"}});
  for (int g = 0; g < gates; ++g) {
    const std::string name = "g" + std::to_string(g);
    cmds.push_back({"add-prim", {name, "NOT"}});
    cmds.push_back({"connect", {"a", name, "a"}});
    cmds.push_back({"connect", {"y", name, "y"}});
  }
  return cmds;
}

void print_hierarchy_report() {
  benchutil::header("checkout_hierarchy: cold vs warm (zero-rehash warm path)");
  constexpr int kHierCells = 12;
  constexpr int kGatesPerCell = 96;
  std::uint64_t cold_us = ~0ull;
  std::uint64_t warm_us = ~0ull;
  std::uint64_t cold_bytes = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    // A fresh world per rep keeps cold honest: the OMS hash memos are
    // per-store, so reusing a world would hand rep 2 a half-warm start.
    coupling::HybridConfig config;
    config.content_addressed_cache = true;
    coupling::HybridFramework hybrid(config);
    if (!hybrid.bootstrap().ok()) std::abort();
    auto user = *hybrid.add_designer("alice");
    if (!hybrid.create_project("p").ok()) std::abort();
    std::vector<std::string> cells{"top"};
    for (int c = 1; c < kHierCells; ++c) cells.push_back("cell" + std::to_string(c));
    for (const auto& cell : cells) {
      if (!hybrid.create_cell("p", cell, user).ok()) std::abort();
      if (!hybrid.reserve_cell("p", cell, user).ok()) std::abort();
      auto run = hybrid.run_activity("p", cell, "enter_schematic", user,
                                     hierarchy_schematic(kGatesPerCell));
      if (!run.ok()) std::abort();
    }
    for (std::size_t c = 1; c < cells.size(); ++c) {
      if (!hybrid.declare_child("p", "top", cells[c]).ok()) std::abort();
    }

    // checkout_hierarchy_full keeps this section measuring the warm
    // FULL walk; the change-feed delta path has its own section below.
    const vfs::Path dst = vfs::Path().child("out").child("hier");
    const auto xfer_before = hybrid.transfer().stats_snapshot();
    auto t0 = std::chrono::steady_clock::now();
    auto cold = hybrid.checkout_hierarchy_full("p", "top", user, dst, /*workers=*/1);
    auto t1 = std::chrono::steady_clock::now();
    if (!cold.ok() || cold->rolled_back || !cold->failures.empty()) std::abort();
    const auto xfer_cold = hybrid.transfer().stats_snapshot();
    cold_bytes = xfer_cold.bytes_exported - xfer_before.bytes_exported;

    // Warm run: same destinations, nothing changed. Snapshot every
    // payload-byte counter on the read/hash path around it.
    const auto fs_before = hybrid.fs().counters();
    const auto ws_before = hybrid.jcf().workspace_stats();
    auto t2 = std::chrono::steady_clock::now();
    auto warm = hybrid.checkout_hierarchy_full("p", "top", user, dst, /*workers=*/1);
    auto t3 = std::chrono::steady_clock::now();
    if (!warm.ok() || warm->rolled_back || !warm->failures.empty()) std::abort();
    const auto fs_after = hybrid.fs().counters();
    const auto ws_after = hybrid.jcf().workspace_stats();

    const std::uint64_t hash_delta = fs_after.hash_bytes - fs_before.hash_bytes;
    const std::uint64_t read_delta = fs_after.bytes_read - fs_before.bytes_read;
    const std::uint64_t dov_delta =
        ws_after.dov_read_bytes_logical - ws_before.dov_read_bytes_logical;
    if (hash_delta != 0 || read_delta != 0 || dov_delta != 0) {
      std::printf("FAIL: warm checkout touched payload bytes: vfs.hash.bytes=+%llu "
                  "vfs bytes_read=+%llu jcf dov_read_bytes_logical=+%llu\n",
                  static_cast<unsigned long long>(hash_delta),
                  static_cast<unsigned long long>(read_delta),
                  static_cast<unsigned long long>(dov_delta));
      std::abort();
    }

    auto us = [](auto a, auto b) {
      return static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
    };
    cold_us = std::min(cold_us, us(t0, t1));
    warm_us = std::min(warm_us, us(t2, t3));
  }

  char line[256];
  const double speedup = warm_us == 0 ? 0.0
                                      : static_cast<double>(cold_us) /
                                            static_cast<double>(warm_us);
  std::snprintf(line, sizeof(line),
                "hierarchy of %d cells: cold %8llu us   warm %8llu us (%4.2fx, "
                "0 payload bytes read/hashed)",
                kHierCells, static_cast<unsigned long long>(cold_us),
                static_cast<unsigned long long>(warm_us), speedup);
  benchutil::row(line);
  std::printf("JFM_PARALLEL_CHECKOUT workers=1 mode=hier_cold wall_us=%llu bytes=%llu "
              "speedup=1.0\n",
              static_cast<unsigned long long>(cold_us),
              static_cast<unsigned long long>(cold_bytes));
  std::printf("JFM_PARALLEL_CHECKOUT workers=1 mode=hier_warm wall_us=%llu bytes=%llu "
              "speedup=%.3f\n",
              static_cast<unsigned long long>(warm_us),
              static_cast<unsigned long long>(cold_bytes), speedup);
  auto& registry = support::telemetry::Registry::global();
  registry.gauge("bench.parallel_checkout.hier.cold.us")
      .set(static_cast<std::int64_t>(cold_us));
  registry.gauge("bench.parallel_checkout.hier.warm.us")
      .set(static_cast<std::int64_t>(warm_us));
}

// -- incremental checkout: change-feed delta vs full warm walk -------------
//
// The O(changed) claim (docs/incremental-checkout.md): once a workspace
// cursor exists, a repeat sync costs work proportional to the DOVs
// that actually changed, not the hierarchy size. We churn {0, 1, 10}%
// of a large hierarchy, then time the change-feed delta
// (checkout_hierarchy) against the full warm walk
// (checkout_hierarchy_full) over the SAME churn event. The JFM_INCR
// rows feed scripts/run_benches.py --check-incremental-speedup, which
// gates >= 5x at 1% churn in CI.

void print_incremental_report() {
  benchutil::header("incremental checkout: change-feed delta vs full warm walk");
  constexpr int kIncrCells = 96;
  constexpr int kIncrGates = 12;  // small payloads: walk cost must dominate

  coupling::HybridConfig config;
  config.content_addressed_cache = true;
  coupling::HybridFramework hybrid(config);
  if (!hybrid.bootstrap().ok()) std::abort();
  auto user = *hybrid.add_designer("alice");
  if (!hybrid.create_project("p").ok()) std::abort();
  std::vector<std::string> cells{"top"};
  for (int c = 1; c < kIncrCells; ++c) cells.push_back("cell" + std::to_string(c));
  for (const auto& cell : cells) {
    if (!hybrid.create_cell("p", cell, user).ok()) std::abort();
    if (!hybrid.reserve_cell("p", cell, user).ok()) std::abort();
    auto run = hybrid.run_activity("p", cell, "enter_schematic", user,
                                   hierarchy_schematic(kIncrGates));
    if (!run.ok()) std::abort();
  }
  for (std::size_t c = 1; c < cells.size(); ++c) {
    if (!hybrid.declare_child("p", "top", cells[c]).ok()) std::abort();
  }

  // Two destinations -> two independent cursors; both primed by a
  // first full sync so every timed row below is a warm repeat.
  const vfs::Path dst_full = vfs::Path().child("out").child("incr_full");
  const vfs::Path dst_incr = vfs::Path().child("out").child("incr_delta");
  for (const auto& dst : {dst_full, dst_incr}) {
    auto prime = hybrid.checkout_hierarchy_full("p", "top", user, dst, /*workers=*/1);
    if (!prime.ok() || !prime->failures.empty()) std::abort();
  }

  auto us = [](auto a, auto b) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
  };
  int edit_seq = 0;
  char line[256];
  double speedup_1pct = 0.0;
  for (int churn_pct : {0, 1, 10}) {
    const int n_changed = churn_pct == 0 ? 0 : std::max(1, kIncrCells * churn_pct / 100);
    std::uint64_t full_us = ~0ull;
    std::uint64_t incr_us = ~0ull;
    std::size_t full_requests = 0;
    std::size_t incr_requests = 0;
    std::size_t incr_skipped = 0;
    std::size_t incr_feed = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      // Fresh edits each rep (rotating cells, unique net names) so
      // every rep is a genuine new churn event, not a cache replay.
      for (int i = 0; i < n_changed; ++i) {
        const auto& cell = cells[static_cast<std::size_t>(
            (rep * n_changed + i) % static_cast<int>(cells.size()))];
        // A new DOV inherits the previous version's content, so the
        // churn edit is a single fresh net, not the whole schematic.
        std::vector<coupling::ToolCommand> edits{
            {"add-net", {"churn" + std::to_string(edit_seq++)}}};
        if (!hybrid.run_activity("p", cell, "enter_schematic", user, edits).ok()) {
          std::abort();
        }
      }
      // Delta first: if the shared content cache biases anything, it
      // biases toward the full walk measured second.
      auto t0 = std::chrono::steady_clock::now();
      auto incr = hybrid.checkout_hierarchy("p", "top", user, dst_incr, /*workers=*/1);
      auto t1 = std::chrono::steady_clock::now();
      if (!incr.ok() || incr->rolled_back || !incr->failures.empty()) std::abort();
      if (!incr->incremental || incr->skipped == 0) std::abort();
      auto t2 = std::chrono::steady_clock::now();
      auto full = hybrid.checkout_hierarchy_full("p", "top", user, dst_full, /*workers=*/1);
      auto t3 = std::chrono::steady_clock::now();
      if (!full.ok() || full->rolled_back || !full->failures.empty()) std::abort();
      if (incr_us > us(t0, t1)) {
        incr_us = us(t0, t1);
        incr_requests = incr->requested;
        incr_skipped = incr->skipped;
        incr_feed = incr->feed_size;
      }
      if (full_us > us(t2, t3)) {
        full_us = us(t2, t3);
        full_requests = full->requested;
      }
    }
    const double speedup = incr_us == 0
                               ? static_cast<double>(full_us)
                               : static_cast<double>(full_us) / static_cast<double>(incr_us);
    if (churn_pct == 1) speedup_1pct = speedup;
    std::snprintf(line, sizeof(line),
                  "churn %2d%% (%2d cell(s)): full %8llu us (%zu req)   delta %8llu us "
                  "(%zu req, %zu skipped, feed %zu, %5.1fx)",
                  churn_pct, n_changed, static_cast<unsigned long long>(full_us),
                  full_requests, static_cast<unsigned long long>(incr_us), incr_requests,
                  incr_skipped, incr_feed, speedup);
    benchutil::row(line);
    std::printf("JFM_INCR churn_pct=%d mode=full wall_us=%llu requests=%zu skipped=0 "
                "feed=0 speedup=1.0\n",
                churn_pct, static_cast<unsigned long long>(full_us), full_requests);
    std::printf("JFM_INCR churn_pct=%d mode=incr wall_us=%llu requests=%zu skipped=%zu "
                "feed=%zu speedup=%.3f\n",
                churn_pct, static_cast<unsigned long long>(incr_us), incr_requests,
                incr_skipped, incr_feed, speedup);
    auto& registry = support::telemetry::Registry::global();
    const std::string prefix = "bench.incremental_checkout.churn" + std::to_string(churn_pct);
    registry.gauge(prefix + ".full.us").set(static_cast<std::int64_t>(full_us));
    registry.gauge(prefix + ".incr.us").set(static_cast<std::int64_t>(incr_us));
  }
  std::printf("JFM_INCR_META cells=%d views=%zu incr_speedup_1pct=%.3f\n", kIncrCells,
              coupling::HybridFramework::standard_views().size(), speedup_1pct);
}

void print_full_report() {
  print_report();
  print_hierarchy_report();
  print_incremental_report();
}

// -- google-benchmark micro-timings ----------------------------------------

void BM_ExportBatchCold(benchmark::State& state) {
  CheckoutEnv env;
  const auto workers = static_cast<std::size_t>(state.range(0));
  coupling::TransferOptions options;
  options.copy_through_filesystem = true;
  options.content_addressed_cache = true;
  options.cache_capacity = 2 * kDovs;
  int tag = 0;
  for (auto _ : state) {
    coupling::TransferEngine engine(&env.jcf, &env.fs,
                                    vfs::Path().child("bm_xfer" + std::to_string(tag)), options);
    auto items = env.requests("bm" + std::to_string(tag++));
    auto results = engine.export_batch(items, workers);
    benchmark::DoNotOptimize(results);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(env.payload_bytes) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ExportBatchCold)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_ExportBatchWarm(benchmark::State& state) {
  CheckoutEnv env;
  const auto workers = static_cast<std::size_t>(state.range(0));
  coupling::TransferOptions options;
  options.copy_through_filesystem = true;
  options.content_addressed_cache = true;
  options.cache_capacity = 2 * kDovs;
  coupling::TransferEngine engine(&env.jcf, &env.fs, vfs::Path().child("bm_warm_xfer"), options);
  auto items = env.requests("bmwarm");
  (void)engine.export_batch(items, workers);  // prime the cache
  for (auto _ : state) {
    auto results = engine.export_batch(items, workers);
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_ExportBatchWarm)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

JFM_BENCH_MAIN(print_full_report)
