// Figure 2: the FMCAD information architecture. The report instantiates
// every entity of the figure (library, cell, view, cellview, cellview
// version, checkout status, configuration) and prints the census; the
// micro-benchmarks time the library operations, showing how the single
// .meta file makes every committed change cost O(library size).

#include "bench_util.hpp"
#include "jfm/fmcad/session.hpp"

namespace {

using namespace jfm;

void print_report() {
  benchutil::header("Figure 2: FMCAD information architecture (instantiated)");
  benchutil::FmcadEnv env;
  auto& session = *env.session;
  env.make_cellview("alu", "schematic");
  env.make_cellview("alu", "layout");
  env.make_cellview("alu", "simulate");
  env.make_cellview("adder", "schematic");
  env.checkin({"alu", "schematic"}, "cvfile 1\ncellview alu schematic schematic\npayload\n");
  env.checkin({"alu", "schematic"}, "cvfile 1\ncellview alu schematic schematic\npayload\nx\n");
  env.checkin({"alu", "layout"}, "cvfile 1\ncellview alu layout layout\npayload\n");
  (void)session.create_config("golden");
  (void)session.set_config_member("golden", {"alu", "schematic"}, 2);
  (void)session.set_config_member("golden", {"alu", "layout"}, 1);
  (void)session.checkout({"adder", "schematic"});  // a live CheckOutStatus

  const auto& meta = env.library->meta();
  benchutil::row("Library: " + meta.library);
  benchutil::row("Cells: " + std::to_string(meta.cells.size()));
  benchutil::row("Views (w/ viewtypes): " + std::to_string(meta.views.size()));
  benchutil::row("Cellviews: " + std::to_string(meta.cellviews.size()));
  std::size_t versions = 0;
  std::size_t checkouts = 0;
  for (const auto& [key, record] : meta.cellviews) {
    versions += record.versions.size();
    if (record.checkout) ++checkouts;
  }
  benchutil::row("Cellview versions: " + std::to_string(versions));
  benchutil::row("Checked-out cellviews (locked flag): " + std::to_string(checkouts));
  benchutil::row("Configurations: " + std::to_string(meta.configs.size()));
  benchutil::row(".meta size: " + std::to_string(meta.serialize().size()) + " bytes (ONE file per library)");
  benchutil::row("library generation: " + std::to_string(meta.generation) +
                 " (every committed change rewrites .meta)");
}

// ---- library operation micro-benchmarks -----------------------------------

void BM_CreateCellAndCellview(benchmark::State& state) {
  benchutil::FmcadEnv env;
  std::uint64_t n = 0;
  for (auto _ : state) {
    const std::string cell = "c" + std::to_string(n++);
    (void)env.session->create_cell(cell);
    auto st = env.session->create_cellview({cell, "schematic"});
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_CreateCellAndCellview)->Unit(benchmark::kMicrosecond);

void BM_CheckoutCheckinCycle(benchmark::State& state) {
  benchutil::FmcadEnv env;
  env.make_cellview("alu", "schematic");
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    (void)env.session->checkout({"alu", "schematic"});
    (void)env.session->write_working({"alu", "schematic"}, payload);
    auto version = env.session->checkin({"alu", "schematic"});
    benchmark::DoNotOptimize(version);
  }
  state.counters["payload_bytes"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_CheckoutCheckinCycle)->Arg(256)->Arg(4096)->Arg(65536)->Unit(benchmark::kMicrosecond);

// The .meta penalty: committed metadata changes get slower as the
// library grows, because the single .meta is rewritten every time.
void BM_MetaCommitVsLibrarySize(benchmark::State& state) {
  benchutil::FmcadEnv env;
  for (int c = 0; c < state.range(0); ++c) {
    const std::string cell = "c" + std::to_string(c);
    env.make_cellview(cell, "schematic");
  }
  std::uint64_t n = 0;
  for (auto _ : state) {
    auto st = env.session->create_config("cfg" + std::to_string(n++));
    benchmark::DoNotOptimize(st);
  }
  state.counters["cells"] = static_cast<double>(state.range(0));
  state.counters["meta_bytes"] =
      static_cast<double>(env.library->meta().serialize().size());
}
BENCHMARK(BM_MetaCommitVsLibrarySize)->Arg(10)->Arg(100)->Arg(400)->Unit(benchmark::kMicrosecond);

void BM_SessionRefresh(benchmark::State& state) {
  benchutil::FmcadEnv env;
  for (int c = 0; c < 100; ++c) env.make_cellview("c" + std::to_string(c), "schematic");
  fmcad::DesignerSession other(env.library, "bob");
  for (auto _ : state) {
    other.refresh();
    benchmark::DoNotOptimize(other.view().generation);
  }
}
BENCHMARK(BM_SessionRefresh)->Unit(benchmark::kMicrosecond);

void BM_NativeReadDefault(benchmark::State& state) {
  benchutil::FmcadEnv env;
  env.make_cellview("alu", "schematic");
  env.checkin({"alu", "schematic"}, std::string(static_cast<std::size_t>(state.range(0)), 'd'));
  for (auto _ : state) {
    auto content = env.session->read_default({"alu", "schematic"});
    benchmark::DoNotOptimize(content);
  }
  state.counters["bytes"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_NativeReadDefault)->Arg(1024)->Arg(262144)->Unit(benchmark::kMicrosecond);

}  // namespace

JFM_BENCH_MAIN(print_report)
