#pragma once
// Shared helpers for the experiment harness. Every bench binary prints
// its paper-style report table first (the rows EXPERIMENTS.md records),
// then runs its google-benchmark micro-timings.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "jfm/coupling/hybrid.hpp"
#include "jfm/support/telemetry.hpp"

namespace jfm::benchutil {

inline void header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void row(const std::string& text) { std::printf("  %s\n", text.c_str()); }

/// One machine-readable line per bench run: the full metrics registry as
/// JSON, tagged with the binary name so harness scripts can split a
/// combined log back into per-bench blobs.
inline void emit_metrics_json(const char* argv0) {
  std::string name(argv0 != nullptr ? argv0 : "bench");
  if (auto slash = name.rfind('/'); slash != std::string::npos) name = name.substr(slash + 1);
  auto snapshot = support::telemetry::Registry::global().snapshot();
  std::printf("\nJFM_METRICS %s %s\n", name.c_str(), snapshot.to_json().c_str());
}

/// A ready-to-use hybrid environment with one project and one designer.
struct HybridEnv {
  explicit HybridEnv(coupling::HybridConfig config = {}) : hybrid(config) {
    if (!hybrid.bootstrap().ok()) std::abort();
    auto u = hybrid.add_designer("alice");
    if (!u.ok()) std::abort();
    alice = *u;
    if (!hybrid.create_project("proj").ok()) std::abort();
  }

  /// cell + reservation, ready for activities.
  void make_cell(const std::string& name) {
    if (!hybrid.create_cell("proj", name, alice).ok()) std::abort();
    if (!hybrid.reserve_cell("proj", name, alice).ok()) std::abort();
  }

  coupling::HybridFramework hybrid;
  jcf::UserRef alice;
};

inline std::vector<coupling::ToolCommand> small_schematic_commands() {
  return {
      {"add-port", {"a", "in"}},   {"add-port", {"b", "in"}},
      {"add-port", {"y", "out"}},  {"add-prim", {"g0", "AND"}},
      {"connect", {"a", "g0", "a"}}, {"connect", {"b", "g0", "b"}},
      {"connect", {"y", "g0", "y"}},
  };
}

/// A native FMCAD library with one designer session and the standard
/// views, for the "FMCAD alone" baselines.
struct FmcadEnv {
  FmcadEnv() : fs(&clock) {
    if (!fs.mkdirs(vfs::Path().child("libs")).ok()) std::abort();
    auto lib = fmcad::Library::create(&fs, &clock, vfs::Path().child("libs"), "native");
    if (!lib.ok()) std::abort();
    library = *lib;
    session = std::make_unique<fmcad::DesignerSession>(library, "alice");
    for (const char* view : {"schematic", "layout", "simulate"}) {
      if (!session->define_view(view, view).ok()) std::abort();
    }
  }

  void make_cellview(const std::string& cell, const std::string& view) {
    if (!library->meta().has_cell(cell) && !session->create_cell(cell).ok()) std::abort();
    if (!session->create_cellview({cell, view}).ok()) std::abort();
  }

  int checkin(const fmcad::CellViewKey& key, const std::string& data) {
    auto work = session->checkout(key);
    if (!work.ok()) std::abort();
    if (!session->write_working(key, data).ok()) std::abort();
    auto version = session->checkin(key);
    if (!version.ok()) std::abort();
    return *version;
  }

  support::SimClock clock;
  vfs::FileSystem fs;
  std::shared_ptr<fmcad::Library> library;
  std::unique_ptr<fmcad::DesignerSession> session;
};

}  // namespace jfm::benchutil

namespace jfm::benchutil {
/// Default to a short measuring window so the whole 9-binary harness
/// finishes in well under a minute; any explicit --benchmark_min_time
/// on the command line wins.
inline std::vector<char*> with_default_min_time(int argc, char** argv,
                                                std::string& storage) {
  std::vector<char*> args(argv, argv + argc);
  bool has_min_time = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_min_time", 0) == 0) has_min_time = true;
  }
  if (!has_min_time) {
    storage = "--benchmark_min_time=0.05";
    args.push_back(storage.data());
  }
  return args;
}
}  // namespace jfm::benchutil

/// Each bench defines `void print_report();` and uses this main. After
/// the report and the micro-timings, the registry snapshot goes out as a
/// single JFM_METRICS line (see docs/observability.md).
#define JFM_BENCH_MAIN(print_report_fn)                                   \
  int main(int argc, char** argv) {                                      \
    print_report_fn();                                                   \
    std::string jfm_min_time_storage;                                    \
    auto jfm_args =                                                      \
        ::jfm::benchutil::with_default_min_time(argc, argv, jfm_min_time_storage); \
    int jfm_argc = static_cast<int>(jfm_args.size());                    \
    ::benchmark::Initialize(&jfm_argc, jfm_args.data());                 \
    if (::benchmark::ReportUnrecognizedArguments(jfm_argc, jfm_args.data())) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                               \
    ::benchmark::Shutdown();                                             \
    ::jfm::benchutil::emit_metrics_json(argc > 0 ? argv[0] : nullptr);   \
    return 0;                                                            \
  }
