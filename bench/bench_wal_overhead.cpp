// Durable-OMS commit-path tax (docs/persistence.md): what does the
// write-ahead log cost per committed transaction, and how much of that
// does group commit buy back?
//
// Three modes run the byte-identical seeded workload -- transactions
// of ~8 mutations shaped like a JCF check-in commit: create a fresh
// version object, stamp integer attributes, write ~96-byte text
// blobs (tool-invocation argument strings -- OMS attributes hold
// metadata; bulk cell payloads live in vfs extents, not the WAL),
// churn links, and retire an old version. All modes execute the identical
// mutation sequence:
//   * off       -- StoreOptions durability off, the paper's volatile
//                  store and the bit-identical ablation baseline;
//   * wal       -- durability on, group_commit=1: every commit encodes
//                  its record AND appends it to the journal;
//   * wal_group -- durability on, group_commit=32: commits encode
//                  eagerly but the append amortizes over 32 commits.
// The report prints ns/commit per mode plus the journal bytes and
// flush count; JFM_WAL / JFM_WAL_META lines feed
// scripts/run_benches.py, which gates --check-wal-overhead on the
// group-commit mode staying within 15% of the volatile baseline.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <string>

#include "bench_util.hpp"
#include "jfm/oms/store.hpp"
#include "jfm/oms/wal.hpp"
#include "jfm/support/rng.hpp"
#include "jfm/vfs/filesystem.hpp"

namespace {

using namespace jfm;
using oms::AttrValue;

constexpr std::size_t kPoolSize = 64;
constexpr std::size_t kCommits = 4000;
constexpr std::size_t kGroup = 32;

oms::Schema wal_schema() {
  oms::Schema schema;
  auto must = [](support::Status st) {
    if (!st.ok()) std::abort();
  };
  must(schema.define_class({"Node",
                            "",
                            {{"label", oms::AttrType::text},
                             {"weight", oms::AttrType::integer}}}));
  must(schema.define_relation({"edge", "Node", "Node", oms::Cardinality::many_to_many}));
  return schema;
}

enum class Mode { off, wal, wal_group };

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::off: return "off";
    case Mode::wal: return "wal";
    case Mode::wal_group: return "wal_group";
  }
  return "?";
}

oms::StoreOptions options_for(Mode mode) {
  oms::StoreOptions opts;
  if (mode != Mode::off) {
    opts.durability = oms::StoreOptions::Durability::wal;
    opts.wal_group_commit = mode == Mode::wal_group ? kGroup : 1;
  }
  return opts;
}

struct RunResult {
  std::uint64_t wall_us = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t flushes = 0;
};

// The store clock is separate from the journal file system's so the
// `off` and `wal` stores see identical timestamp sequences -- the
// workloads stay byte-identical, only the journalling differs.
RunResult run_mode(Mode mode, std::size_t commits) {
  support::SimClock store_clock;
  support::SimClock journal_clock;
  vfs::FileSystem journal_fs(&journal_clock);
  oms::Store store(wal_schema(), &store_clock, options_for(mode));
  if (mode != Mode::off) {
    if (!store.open(journal_fs, vfs::Path().child("oms")).ok()) std::abort();
  }
  std::vector<oms::ObjectId> pool;
  for (std::size_t i = 0; i < kPoolSize; ++i) pool.push_back(*store.create("Node"));

  support::Rng rng(20260808);
  // Reusable ~96-byte text payload, mutated cheaply per commit so the
  // journalled bytes differ without re-allocating the buffer.
  std::string blob(96, 'x');
  // Versions created by earlier commits, retired FIFO once enough have
  // accumulated -- the check-in / supersede cycle.
  std::deque<oms::ObjectId> recent;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < commits; ++i) {
    if (!store.begin().ok()) std::abort();
    oms::ObjectId fresh = *store.create("Node");
    oms::ObjectId a = rng.pick(pool);
    oms::ObjectId b = rng.pick(pool);
    if (!store.set(fresh, "weight", AttrValue(static_cast<std::int64_t>(i))).ok()) std::abort();
    if (!store.set(a, "weight", AttrValue(static_cast<std::int64_t>(i))).ok()) std::abort();
    blob[i % blob.size()] = static_cast<char>('a' + i % 26);
    if (!store.set(fresh, "label", AttrValue(blob)).ok()) std::abort();
    blob[(i * 7) % blob.size()] = static_cast<char>('A' + i % 26);
    if (!store.set(b, "label", AttrValue(blob)).ok()) std::abort();
    (void)store.link("edge", fresh, a);
    if (i % 2 == 0) {
      (void)store.link("edge", a, b);
    } else {
      (void)store.unlink("edge", a, b);
    }
    recent.push_back(fresh);
    if (recent.size() > kPoolSize) {
      if (!store.destroy(recent.front()).ok()) std::abort();
      recent.pop_front();
    }
    if (!store.commit().ok()) std::abort();
  }
  if (mode != Mode::off && !store.flush_wal().ok()) std::abort();
  const auto end = std::chrono::steady_clock::now();

  RunResult out;
  out.wall_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(end - start).count());
  const oms::Store::WalStats stats = store.wal_stats();
  out.wal_bytes = stats.appended_bytes;
  out.flushes = stats.flushes;
  return out;
}

void print_report() {
  benchutil::header("durable OMS: WAL overhead per commit (off / wal / group)");
  auto& registry = support::telemetry::Registry::global();
  char line[256];
  std::uint64_t wall[3] = {0, 0, 0};
  // Warm up every mode first, then interleave the timed repetitions
  // round-robin across modes: a load spike on a shared box hits all
  // three modes instead of skewing one side of the overhead ratio, and
  // the per-mode minimum over 9 reps converges on the quiet-machine
  // cost.
  RunResult best[3];
  for (Mode mode : {Mode::off, Mode::wal, Mode::wal_group}) {
    (void)run_mode(mode, kCommits / 4);  // warmup: page in both paths
  }
  for (int rep = 0; rep < 9; ++rep) {
    for (Mode mode : {Mode::off, Mode::wal, Mode::wal_group}) {
      RunResult r = run_mode(mode, kCommits);
      RunResult& b = best[static_cast<int>(mode)];
      if (b.wall_us == 0 || r.wall_us < b.wall_us) b = r;
    }
  }
  for (Mode mode : {Mode::off, Mode::wal, Mode::wal_group}) {
    const RunResult& b = best[static_cast<int>(mode)];
    wall[static_cast<int>(mode)] = b.wall_us;
    const std::uint64_t ns_per_commit = b.wall_us * 1000 / kCommits;
    std::snprintf(line, sizeof(line),
                  "%-9s  %8llu us  %6llu ns/commit  wal_bytes=%llu flushes=%llu",
                  mode_name(mode), static_cast<unsigned long long>(b.wall_us),
                  static_cast<unsigned long long>(ns_per_commit),
                  static_cast<unsigned long long>(b.wal_bytes),
                  static_cast<unsigned long long>(b.flushes));
    benchutil::row(line);
    std::printf("JFM_WAL mode=%s commits=%zu wall_us=%llu ns_per_commit=%llu "
                "wal_bytes=%llu flushes=%llu\n",
                mode_name(mode), kCommits, static_cast<unsigned long long>(b.wall_us),
                static_cast<unsigned long long>(ns_per_commit),
                static_cast<unsigned long long>(b.wal_bytes),
                static_cast<unsigned long long>(b.flushes));
    registry.gauge(std::string("bench.wal_overhead.") + mode_name(mode) + ".ns_per_commit")
        .set(static_cast<std::int64_t>(ns_per_commit));
  }
  const double base = static_cast<double>(wall[0] == 0 ? 1 : wall[0]);
  const double overhead_wal = (static_cast<double>(wall[1]) - base) / base;
  const double overhead_group = (static_cast<double>(wall[2]) - base) / base;
  std::snprintf(line, sizeof(line),
                "overhead vs off: wal %+.1f%%  wal_group %+.1f%% (group=%zu)",
                overhead_wal * 100.0, overhead_group * 100.0, kGroup);
  benchutil::row(line);
  std::printf("JFM_WAL_META commits=%zu group=%zu overhead_wal=%.4f overhead_group=%.4f\n",
              kCommits, kGroup, overhead_wal, overhead_group);
}

// -- google-benchmark micro-timings ----------------------------------------

void BM_Commit(benchmark::State& state) {
  const Mode mode = static_cast<Mode>(state.range(0));
  support::SimClock store_clock, journal_clock;
  vfs::FileSystem journal_fs(&journal_clock);
  oms::Store store(wal_schema(), &store_clock, options_for(mode));
  if (mode != Mode::off && !store.open(journal_fs, vfs::Path().child("oms")).ok()) {
    std::abort();
  }
  std::vector<oms::ObjectId> pool;
  for (std::size_t i = 0; i < kPoolSize; ++i) pool.push_back(*store.create("Node"));
  support::Rng rng(7);
  std::int64_t n = 0;
  for (auto _ : state) {
    if (!store.begin().ok()) std::abort();
    if (!store.set(rng.pick(pool), "weight", AttrValue(n++)).ok()) std::abort();
    if (!store.commit().ok()) std::abort();
  }
}
BENCHMARK(BM_Commit)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

}  // namespace

JFM_BENCH_MAIN(print_report)
