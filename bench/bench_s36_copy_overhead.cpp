// Section 3.6: performance.
//
// Claims reproduced:
//  * "The performance of metadata operations ... is sufficiently high"
//    -- metadata ops are design-size independent;
//  * "for design data manipulations the performance is strongly
//    dependent on the amount of data: while the time delay for small
//    designs is acceptable, more complex and realistic designs may
//    cause problems, mainly due to the fact that design data have to be
//    copied to and from the JCF database even in the case of read only
//    accesses" -- we sweep design size and compare a native FMCAD
//    read-only open (no copy) with the hybrid one (copy out of OMS,
//    staged through the file system), plus the direct-access ablation.

#include <chrono>

#include "bench_util.hpp"
#include "jfm/workload/generators.hpp"

namespace {

using namespace jfm;

// ---- copy-on-write extents (docs/vfs-cow.md) -------------------------------
// The s3.6 copy tax has two layers. The transfer cache (below) removes
// the REPEAT cost of an unchanged open; COW extents remove the
// physical cost of the copies that do happen: a cold copy_file is an
// O(1) refcount bump instead of an O(size) duplication. This section
// times a batch of cold copies in both modes, proves the results are
// bit-identical, and emits the speedup run_benches.py gates on.

constexpr int kCowCopies = 64;
constexpr int kCowReps = 3;

/// min-of-reps wall time for kCowCopies cold copies of one `size`-byte
/// file; also returns the physical bytes the batch moved and a
/// fingerprint of every destination payload (for the cross-mode
/// bit-identical check).
struct CowRun {
  std::uint64_t wall_us = ~0ull;
  std::uint64_t physical_bytes = 0;
  std::uint64_t content_hash = 0;  // fnv1a over all destination payloads
};

CowRun run_cow_copies(const std::string& payload, bool cow_on) {
  CowRun out;
  for (int rep = 0; rep < kCowReps; ++rep) {
    support::SimClock clock;
    vfs::FileSystem fs(&clock, vfs::FsOptions{.cow_extents = cow_on});
    if (!fs.write_file(vfs::Path().child("src"), payload).ok()) std::abort();
    if (!fs.mkdirs(vfs::Path().child("dst")).ok()) std::abort();
    fs.reset_counters();
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kCowCopies; ++i) {
      auto st = fs.copy_file(vfs::Path().child("src"),
                             vfs::Path().child("dst").child("c" + std::to_string(i)));
      if (!st.ok()) std::abort();
    }
    const auto end = std::chrono::steady_clock::now();
    out.wall_us = std::min(
        out.wall_us, static_cast<std::uint64_t>(
                         std::chrono::duration_cast<std::chrono::microseconds>(end - start)
                             .count()));
    out.physical_bytes = fs.counters().bytes_physical_copied;
    // Verify outside the timed region: every destination must hold the
    // source payload bit-exactly, in BOTH modes.
    std::uint64_t hash = vfs::kFnv1aOffset;
    for (int i = 0; i < kCowCopies; ++i) {
      auto data = fs.read_file(vfs::Path().child("dst").child("c" + std::to_string(i)));
      if (!data.ok() || *data != payload) std::abort();
      hash ^= vfs::fnv1a(*data);
      hash *= vfs::kFnv1aPrime;
    }
    out.content_hash = hash;
  }
  return out;
}

void print_report() {
  benchutil::header("s3.6: bytes moved by ONE read-only open of a design");
  std::printf("  %-14s | %16s | %22s | %18s\n", "design size", "native FMCAD",
              "hybrid (paper: staged)", "hybrid (direct)");
  for (std::size_t size : {1u << 10, 1u << 14, 1u << 18, 1u << 20}) {
    support::Rng rng(size);
    const std::string payload = workload::schematic_payload_of_size(rng, size);

    // native: read the version file in place
    std::uint64_t native_bytes = 0;
    {
      benchutil::FmcadEnv env;
      env.make_cellview("c", "schematic");
      env.checkin({"c", "schematic"}, payload);
      env.fs.reset_counters();
      auto content = env.session->read_default({"c", "schematic"});
      if (!content.ok()) std::abort();
      native_bytes = env.fs.counters().bytes_read + env.fs.counters().bytes_written;
    }

    auto hybrid_bytes = [&](bool staged) {
      coupling::HybridConfig config;
      config.copy_through_filesystem = staged;
      benchutil::HybridEnv env(config);
      env.make_cell("c");
      // put the payload into OMS through a real activity
      auto& jcf = env.hybrid.jcf();
      auto project = *jcf.find_project("proj");
      auto cell = *jcf.find_cell(project, "c");
      auto cv = *jcf.latest_cell_version(cell);
      auto variant = *jcf.find_variant(cv, "work");
      auto vt = *jcf.find_viewtype("schematic");
      auto dobj = *jcf.create_design_object(variant, "schematic", vt, env.alice);
      (void)*jcf.create_dov(dobj, payload, env.alice);
      env.hybrid.fs().reset_counters();
      auto content = env.hybrid.open_read_only("proj", "c", "schematic", env.alice);
      if (!content.ok()) std::abort();
      return env.hybrid.fs().counters().bytes_read + env.hybrid.fs().counters().bytes_written;
    };

    std::printf("  %10zu B | %14llu B | %20llu B | %16llu B\n", payload.size(),
                static_cast<unsigned long long>(native_bytes),
                static_cast<unsigned long long>(hybrid_bytes(true)),
                static_cast<unsigned long long>(hybrid_bytes(false)));
  }
  benchutil::row("");
  benchutil::row("shape: native ~= 1x size; hybrid staged ~= 4x size (DB export + stage +");
  benchutil::row("copy + read); the direct-interface ablation removes the staging copy.");

  // ---- the content-addressed cache ablation -------------------------------
  // The paper's bottom line (s3.6) is that read-only access pays the
  // copy every time. The transfer cache removes the repeat cost: the
  // first (cold) open copies as in the paper, the second (warm) open of
  // the unchanged version verifies a content hash and moves only the
  // final read.
  benchutil::header("s3.6 fix: content-addressed cache, cold vs warm read-only open");
  std::printf("  %-14s | %14s | %14s | %11s | %12s\n", "design size", "cold bytes",
              "warm bytes", "reduction", "bytes saved");
  // Per-engine stats summed across the sweep; checked below against the
  // process-wide registry counters the engines fold into.
  std::uint64_t agg_hits = 0;
  std::uint64_t agg_misses = 0;
  std::uint64_t agg_saved = 0;
  for (std::size_t size : {1u << 10, 1u << 14, 1u << 18, 1u << 20}) {
    support::Rng rng(size);
    const std::string payload = workload::schematic_payload_of_size(rng, size);
    coupling::HybridConfig config;
    config.copy_through_filesystem = true;
    config.content_addressed_cache = true;
    benchutil::HybridEnv env(config);
    env.make_cell("c");
    auto& jcf = env.hybrid.jcf();
    auto project = *jcf.find_project("proj");
    auto cell = *jcf.find_cell(project, "c");
    auto cv = *jcf.latest_cell_version(cell);
    auto variant = *jcf.find_variant(cv, "work");
    auto vt = *jcf.find_viewtype("schematic");
    auto dobj = *jcf.create_design_object(variant, "schematic", vt, env.alice);
    (void)*jcf.create_dov(dobj, payload, env.alice);

    auto moved = [&]() {
      const auto& c = env.hybrid.fs().counters();
      return c.bytes_read + c.bytes_written;
    };
    env.hybrid.fs().reset_counters();
    if (!env.hybrid.open_read_only("proj", "c", "schematic", env.alice).ok()) std::abort();
    const std::uint64_t cold = moved();
    env.hybrid.fs().reset_counters();
    if (!env.hybrid.open_read_only("proj", "c", "schematic", env.alice).ok()) std::abort();
    const std::uint64_t warm = moved();
    const auto stats = env.hybrid.transfer().stats_snapshot();
    agg_hits += stats.cache_hits;
    agg_misses += stats.cache_misses;
    agg_saved += stats.bytes_saved;
    std::printf("  %10zu B | %12llu B | %12llu B | %10.1fx | %10llu B\n", payload.size(),
                static_cast<unsigned long long>(cold), static_cast<unsigned long long>(warm),
                warm == 0 ? 0.0 : static_cast<double>(cold) / static_cast<double>(warm),
                static_cast<unsigned long long>(stats.bytes_saved));
  }
  benchutil::row("");
  benchutil::row("cold ~= 4x size (DB export + stage + copy + read); warm ~= 1x size (hash");
  benchutil::row("check + final read only): the repeat copy tax of s3.6 is gone (>= 2x).");

  // Cross-check: the registry's process-wide cache counters must agree
  // with the per-engine TransferStats summed over the sweep (this
  // section is the only cache-enabled transfer traffic in the process).
  auto& registry = support::telemetry::Registry::global();
  const std::uint64_t reg_hits = registry.counter("coupling.transfer.cache.hit.count").value();
  const std::uint64_t reg_misses =
      registry.counter("coupling.transfer.cache.miss.count").value();
  const std::uint64_t reg_saved =
      registry.counter("coupling.transfer.cache.saved.bytes").value();
  const bool agree = reg_hits == agg_hits && reg_misses == agg_misses && reg_saved == agg_saved;
  benchutil::row("");
  benchutil::row("registry vs TransferStats: hits " + std::to_string(reg_hits) + "/" +
                 std::to_string(agg_hits) + ", misses " + std::to_string(reg_misses) + "/" +
                 std::to_string(agg_misses) + ", saved " + std::to_string(reg_saved) + "/" +
                 std::to_string(agg_saved) + " B -> " + (agree ? "AGREE" : "MISMATCH"));
  if (!agree) std::abort();

  // ---- the COW-extent ablation -------------------------------------------
  benchutil::header("s3.6 fix: COW extents, cold copy_file batch (64 copies, min of 3)");
  std::printf("  %-14s | %14s | %16s | %11s | %16s\n", "payload size", "cow wall",
              "physical wall", "speedup", "physical bytes");
  auto& reg = support::telemetry::Registry::global();
  double largest_speedup = 0.0;
  std::size_t largest_size = 0;
  for (std::size_t size : {1u << 14, 1u << 18, 1u << 20, 1u << 22}) {
    support::Rng rng(size);
    const std::string payload = workload::schematic_payload_of_size(rng, size);
    const CowRun cow = run_cow_copies(payload, /*cow_on=*/true);
    const CowRun raw = run_cow_copies(payload, /*cow_on=*/false);
    // Bit-identical across modes is the ablation contract.
    if (cow.content_hash != raw.content_hash) std::abort();
    if (cow.physical_bytes != 0) std::abort();
    if (raw.physical_bytes != static_cast<std::uint64_t>(kCowCopies) * payload.size())
      std::abort();
    const double speedup = cow.wall_us == 0
                               ? static_cast<double>(raw.wall_us)
                               : static_cast<double>(raw.wall_us) / static_cast<double>(cow.wall_us);
    std::printf("  %10zu B | %10llu us | %12llu us | %10.1fx | %14llu B\n", payload.size(),
                static_cast<unsigned long long>(cow.wall_us),
                static_cast<unsigned long long>(raw.wall_us), speedup,
                static_cast<unsigned long long>(raw.physical_bytes));
    std::printf("JFM_S36_COW size=%zu mode=cow wall_us=%llu copies=%d physical_bytes=%llu\n",
                payload.size(), static_cast<unsigned long long>(cow.wall_us), kCowCopies,
                static_cast<unsigned long long>(cow.physical_bytes));
    std::printf("JFM_S36_COW size=%zu mode=physical wall_us=%llu copies=%d physical_bytes=%llu\n",
                payload.size(), static_cast<unsigned long long>(raw.wall_us), kCowCopies,
                static_cast<unsigned long long>(raw.physical_bytes));
    if (payload.size() >= largest_size) {
      largest_size = payload.size();
      largest_speedup = speedup;
    }
  }
  benchutil::row("");
  benchutil::row("both modes end bit-identical; COW moves ZERO physical bytes per copy, so");
  benchutil::row("the cold copy cost is size-independent -- the s3.6 scaling problem inverts.");
  std::printf("JFM_S36_COW_META largest_size=%zu copies=%d cold_copy_speedup=%.3f\n",
              largest_size, kCowCopies, largest_speedup);
  reg.gauge("bench.s36.cow.largest.size").set(static_cast<std::int64_t>(largest_size));
  reg.gauge("bench.s36.cow.cold.speedup.x1000")
      .set(static_cast<std::int64_t>(largest_speedup * 1000.0));
}

// ---- timing sweeps ---------------------------------------------------------

// Metadata operation latency must NOT depend on design data size.
void BM_MetadataOpVsDesignSize(benchmark::State& state) {
  benchutil::HybridEnv env;
  env.make_cell("c");
  auto& jcf = env.hybrid.jcf();
  auto project = *jcf.find_project("proj");
  auto cell = *jcf.find_cell(project, "c");
  auto cv = *jcf.latest_cell_version(cell);
  auto variant = *jcf.find_variant(cv, "work");
  auto vt = *jcf.find_viewtype("schematic");
  auto dobj = *jcf.create_design_object(variant, "schematic", vt, env.alice);
  support::Rng rng(1);
  (void)*jcf.create_dov(dobj, workload::schematic_payload_of_size(
                                  rng, static_cast<std::size_t>(state.range(0))),
                        env.alice);
  std::uint64_t n = 0;
  for (auto _ : state) {
    auto config = jcf.create_config(cv, "cfg" + std::to_string(n++));
    benchmark::DoNotOptimize(config);
  }
  state.counters["design_bytes"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_MetadataOpVsDesignSize)
    ->Arg(1 << 10)
    ->Arg(1 << 16)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMicrosecond);

// Hybrid read-only open latency grows with design size (the copy).
void BM_HybridReadOnlyOpen(benchmark::State& state) {
  benchutil::HybridEnv env;
  env.make_cell("c");
  auto& jcf = env.hybrid.jcf();
  auto project = *jcf.find_project("proj");
  auto cell = *jcf.find_cell(project, "c");
  auto cv = *jcf.latest_cell_version(cell);
  auto variant = *jcf.find_variant(cv, "work");
  auto vt = *jcf.find_viewtype("schematic");
  auto dobj = *jcf.create_design_object(variant, "schematic", vt, env.alice);
  support::Rng rng(2);
  (void)*jcf.create_dov(dobj, workload::schematic_payload_of_size(
                                  rng, static_cast<std::size_t>(state.range(0))),
                        env.alice);
  for (auto _ : state) {
    auto content = env.hybrid.open_read_only("proj", "c", "schematic", env.alice);
    benchmark::DoNotOptimize(content);
  }
  state.counters["design_bytes"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_HybridReadOnlyOpen)
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 18)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMicrosecond);

// Native FMCAD read of the same sizes: no database, no staging.
void BM_NativeReadOnlyOpen(benchmark::State& state) {
  benchutil::FmcadEnv env;
  env.make_cellview("c", "schematic");
  support::Rng rng(3);
  env.checkin({"c", "schematic"}, workload::schematic_payload_of_size(
                                      rng, static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    auto content = env.session->read_default({"c", "schematic"});
    benchmark::DoNotOptimize(content);
  }
  state.counters["design_bytes"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_NativeReadOnlyOpen)
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 18)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMicrosecond);

// A full hybrid activity (checkout->edit->checkin->import) vs payload size.
void BM_HybridActivityVsDesignSize(benchmark::State& state) {
  benchutil::HybridEnv env;
  env.make_cell("c");
  support::Rng rng(4);
  // first build up a schematic of the target size through one activity
  const auto target = static_cast<std::size_t>(state.range(0));
  std::vector<coupling::ToolCommand> grow;
  grow.push_back({"add-net", {"seed"}});
  std::size_t approx = 10;
  std::uint64_t n = 0;
  while (approx < target) {
    grow.push_back({"add-net", {"net_" + std::to_string(n++)}});
    approx += 12;
  }
  (void)env.hybrid.run_activity("proj", "c", "enter_schematic", env.alice, grow);
  for (auto _ : state) {
    std::vector<coupling::ToolCommand> edits{{"add-net", {"x" + std::to_string(n++)}}};
    auto run = env.hybrid.run_activity("proj", "c", "enter_schematic", env.alice, edits);
    benchmark::DoNotOptimize(run);
  }
  state.counters["approx_bytes"] = static_cast<double>(target);
}
BENCHMARK(BM_HybridActivityVsDesignSize)
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 17)
    ->Unit(benchmark::kMicrosecond);

// Cold copy_file in both COW modes (args: size, cow). The shared copy
// is size-independent; the ablation scales with the payload. The
// destination is overwritten each iteration so the tree stays small.
void BM_ColdCopyFile(benchmark::State& state) {
  const bool cow_on = state.range(1) != 0;
  support::SimClock clock;
  vfs::FileSystem fs(&clock, vfs::FsOptions{.cow_extents = cow_on});
  support::Rng rng(5);
  const auto size = static_cast<std::size_t>(state.range(0));
  if (!fs.write_file(vfs::Path().child("src"), workload::schematic_payload_of_size(rng, size))
           .ok()) {
    std::abort();
  }
  for (auto _ : state) {
    auto st = fs.copy_file(vfs::Path().child("src"), vfs::Path().child("dst"));
    benchmark::DoNotOptimize(st);
  }
  state.counters["payload_bytes"] = static_cast<double>(size);
  state.counters["cow"] = cow_on ? 1.0 : 0.0;
}
BENCHMARK(BM_ColdCopyFile)
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 0})
    ->Args({1 << 22, 1})
    ->Args({1 << 22, 0})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

JFM_BENCH_MAIN(print_report)
