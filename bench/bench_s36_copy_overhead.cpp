// Section 3.6: performance.
//
// Claims reproduced:
//  * "The performance of metadata operations ... is sufficiently high"
//    -- metadata ops are design-size independent;
//  * "for design data manipulations the performance is strongly
//    dependent on the amount of data: while the time delay for small
//    designs is acceptable, more complex and realistic designs may
//    cause problems, mainly due to the fact that design data have to be
//    copied to and from the JCF database even in the case of read only
//    accesses" -- we sweep design size and compare a native FMCAD
//    read-only open (no copy) with the hybrid one (copy out of OMS,
//    staged through the file system), plus the direct-access ablation.

#include "bench_util.hpp"
#include "jfm/workload/generators.hpp"

namespace {

using namespace jfm;

void print_report() {
  benchutil::header("s3.6: bytes moved by ONE read-only open of a design");
  std::printf("  %-14s | %16s | %22s | %18s\n", "design size", "native FMCAD",
              "hybrid (paper: staged)", "hybrid (direct)");
  for (std::size_t size : {1u << 10, 1u << 14, 1u << 18, 1u << 20}) {
    support::Rng rng(size);
    const std::string payload = workload::schematic_payload_of_size(rng, size);

    // native: read the version file in place
    std::uint64_t native_bytes = 0;
    {
      benchutil::FmcadEnv env;
      env.make_cellview("c", "schematic");
      env.checkin({"c", "schematic"}, payload);
      env.fs.reset_counters();
      auto content = env.session->read_default({"c", "schematic"});
      if (!content.ok()) std::abort();
      native_bytes = env.fs.counters().bytes_read + env.fs.counters().bytes_written;
    }

    auto hybrid_bytes = [&](bool staged) {
      coupling::HybridConfig config;
      config.copy_through_filesystem = staged;
      benchutil::HybridEnv env(config);
      env.make_cell("c");
      // put the payload into OMS through a real activity
      auto& jcf = env.hybrid.jcf();
      auto project = *jcf.find_project("proj");
      auto cell = *jcf.find_cell(project, "c");
      auto cv = *jcf.latest_cell_version(cell);
      auto variant = *jcf.find_variant(cv, "work");
      auto vt = *jcf.find_viewtype("schematic");
      auto dobj = *jcf.create_design_object(variant, "schematic", vt, env.alice);
      (void)*jcf.create_dov(dobj, payload, env.alice);
      env.hybrid.fs().reset_counters();
      auto content = env.hybrid.open_read_only("proj", "c", "schematic", env.alice);
      if (!content.ok()) std::abort();
      return env.hybrid.fs().counters().bytes_read + env.hybrid.fs().counters().bytes_written;
    };

    std::printf("  %10zu B | %14llu B | %20llu B | %16llu B\n", payload.size(),
                static_cast<unsigned long long>(native_bytes),
                static_cast<unsigned long long>(hybrid_bytes(true)),
                static_cast<unsigned long long>(hybrid_bytes(false)));
  }
  benchutil::row("");
  benchutil::row("shape: native ~= 1x size; hybrid staged ~= 4x size (DB export + stage +");
  benchutil::row("copy + read); the direct-interface ablation removes the staging copy.");

  // ---- the content-addressed cache ablation -------------------------------
  // The paper's bottom line (s3.6) is that read-only access pays the
  // copy every time. The transfer cache removes the repeat cost: the
  // first (cold) open copies as in the paper, the second (warm) open of
  // the unchanged version verifies a content hash and moves only the
  // final read.
  benchutil::header("s3.6 fix: content-addressed cache, cold vs warm read-only open");
  std::printf("  %-14s | %14s | %14s | %11s | %12s\n", "design size", "cold bytes",
              "warm bytes", "reduction", "bytes saved");
  // Per-engine stats summed across the sweep; checked below against the
  // process-wide registry counters the engines fold into.
  std::uint64_t agg_hits = 0;
  std::uint64_t agg_misses = 0;
  std::uint64_t agg_saved = 0;
  for (std::size_t size : {1u << 10, 1u << 14, 1u << 18, 1u << 20}) {
    support::Rng rng(size);
    const std::string payload = workload::schematic_payload_of_size(rng, size);
    coupling::HybridConfig config;
    config.copy_through_filesystem = true;
    config.content_addressed_cache = true;
    benchutil::HybridEnv env(config);
    env.make_cell("c");
    auto& jcf = env.hybrid.jcf();
    auto project = *jcf.find_project("proj");
    auto cell = *jcf.find_cell(project, "c");
    auto cv = *jcf.latest_cell_version(cell);
    auto variant = *jcf.find_variant(cv, "work");
    auto vt = *jcf.find_viewtype("schematic");
    auto dobj = *jcf.create_design_object(variant, "schematic", vt, env.alice);
    (void)*jcf.create_dov(dobj, payload, env.alice);

    auto moved = [&]() {
      const auto& c = env.hybrid.fs().counters();
      return c.bytes_read + c.bytes_written;
    };
    env.hybrid.fs().reset_counters();
    if (!env.hybrid.open_read_only("proj", "c", "schematic", env.alice).ok()) std::abort();
    const std::uint64_t cold = moved();
    env.hybrid.fs().reset_counters();
    if (!env.hybrid.open_read_only("proj", "c", "schematic", env.alice).ok()) std::abort();
    const std::uint64_t warm = moved();
    const auto stats = env.hybrid.transfer().stats_snapshot();
    agg_hits += stats.cache_hits;
    agg_misses += stats.cache_misses;
    agg_saved += stats.bytes_saved;
    std::printf("  %10zu B | %12llu B | %12llu B | %10.1fx | %10llu B\n", payload.size(),
                static_cast<unsigned long long>(cold), static_cast<unsigned long long>(warm),
                warm == 0 ? 0.0 : static_cast<double>(cold) / static_cast<double>(warm),
                static_cast<unsigned long long>(stats.bytes_saved));
  }
  benchutil::row("");
  benchutil::row("cold ~= 4x size (DB export + stage + copy + read); warm ~= 1x size (hash");
  benchutil::row("check + final read only): the repeat copy tax of s3.6 is gone (>= 2x).");

  // Cross-check: the registry's process-wide cache counters must agree
  // with the per-engine TransferStats summed over the sweep (this
  // section is the only cache-enabled transfer traffic in the process).
  auto& registry = support::telemetry::Registry::global();
  const std::uint64_t reg_hits = registry.counter("coupling.transfer.cache.hit.count").value();
  const std::uint64_t reg_misses =
      registry.counter("coupling.transfer.cache.miss.count").value();
  const std::uint64_t reg_saved =
      registry.counter("coupling.transfer.cache.saved.bytes").value();
  const bool agree = reg_hits == agg_hits && reg_misses == agg_misses && reg_saved == agg_saved;
  benchutil::row("");
  benchutil::row("registry vs TransferStats: hits " + std::to_string(reg_hits) + "/" +
                 std::to_string(agg_hits) + ", misses " + std::to_string(reg_misses) + "/" +
                 std::to_string(agg_misses) + ", saved " + std::to_string(reg_saved) + "/" +
                 std::to_string(agg_saved) + " B -> " + (agree ? "AGREE" : "MISMATCH"));
  if (!agree) std::abort();
}

// ---- timing sweeps ---------------------------------------------------------

// Metadata operation latency must NOT depend on design data size.
void BM_MetadataOpVsDesignSize(benchmark::State& state) {
  benchutil::HybridEnv env;
  env.make_cell("c");
  auto& jcf = env.hybrid.jcf();
  auto project = *jcf.find_project("proj");
  auto cell = *jcf.find_cell(project, "c");
  auto cv = *jcf.latest_cell_version(cell);
  auto variant = *jcf.find_variant(cv, "work");
  auto vt = *jcf.find_viewtype("schematic");
  auto dobj = *jcf.create_design_object(variant, "schematic", vt, env.alice);
  support::Rng rng(1);
  (void)*jcf.create_dov(dobj, workload::schematic_payload_of_size(
                                  rng, static_cast<std::size_t>(state.range(0))),
                        env.alice);
  std::uint64_t n = 0;
  for (auto _ : state) {
    auto config = jcf.create_config(cv, "cfg" + std::to_string(n++));
    benchmark::DoNotOptimize(config);
  }
  state.counters["design_bytes"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_MetadataOpVsDesignSize)
    ->Arg(1 << 10)
    ->Arg(1 << 16)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMicrosecond);

// Hybrid read-only open latency grows with design size (the copy).
void BM_HybridReadOnlyOpen(benchmark::State& state) {
  benchutil::HybridEnv env;
  env.make_cell("c");
  auto& jcf = env.hybrid.jcf();
  auto project = *jcf.find_project("proj");
  auto cell = *jcf.find_cell(project, "c");
  auto cv = *jcf.latest_cell_version(cell);
  auto variant = *jcf.find_variant(cv, "work");
  auto vt = *jcf.find_viewtype("schematic");
  auto dobj = *jcf.create_design_object(variant, "schematic", vt, env.alice);
  support::Rng rng(2);
  (void)*jcf.create_dov(dobj, workload::schematic_payload_of_size(
                                  rng, static_cast<std::size_t>(state.range(0))),
                        env.alice);
  for (auto _ : state) {
    auto content = env.hybrid.open_read_only("proj", "c", "schematic", env.alice);
    benchmark::DoNotOptimize(content);
  }
  state.counters["design_bytes"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_HybridReadOnlyOpen)
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 18)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMicrosecond);

// Native FMCAD read of the same sizes: no database, no staging.
void BM_NativeReadOnlyOpen(benchmark::State& state) {
  benchutil::FmcadEnv env;
  env.make_cellview("c", "schematic");
  support::Rng rng(3);
  env.checkin({"c", "schematic"}, workload::schematic_payload_of_size(
                                      rng, static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    auto content = env.session->read_default({"c", "schematic"});
    benchmark::DoNotOptimize(content);
  }
  state.counters["design_bytes"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_NativeReadOnlyOpen)
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 18)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMicrosecond);

// A full hybrid activity (checkout->edit->checkin->import) vs payload size.
void BM_HybridActivityVsDesignSize(benchmark::State& state) {
  benchutil::HybridEnv env;
  env.make_cell("c");
  support::Rng rng(4);
  // first build up a schematic of the target size through one activity
  const auto target = static_cast<std::size_t>(state.range(0));
  std::vector<coupling::ToolCommand> grow;
  grow.push_back({"add-net", {"seed"}});
  std::size_t approx = 10;
  std::uint64_t n = 0;
  while (approx < target) {
    grow.push_back({"add-net", {"net_" + std::to_string(n++)}});
    approx += 12;
  }
  (void)env.hybrid.run_activity("proj", "c", "enter_schematic", env.alice, grow);
  for (auto _ : state) {
    std::vector<coupling::ToolCommand> edits{{"add-net", {"x" + std::to_string(n++)}}};
    auto run = env.hybrid.run_activity("proj", "c", "enter_schematic", env.alice, edits);
    benchmark::DoNotOptimize(run);
  }
  state.counters["approx_bytes"] = static_cast<double>(target);
}
BENCHMARK(BM_HybridActivityVsDesignSize)
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 17)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

JFM_BENCH_MAIN(print_report)
