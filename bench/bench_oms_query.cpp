// OMS query engine: does the secondary-index layer actually flatten
// find_one/objects_of/linked from O(total objects) to O(1)/O(result)?
//
// The workload is the shape every JCF name resolution takes: a store of
// N objects (a Named/Cell/Macro hierarchy so subclass fan-in is
// exercised), unique "name" attributes, a small "group" attribute with
// heavy duplication, and one hub object with ~sqrt(N) outgoing edges.
// For N in {1k, 10k, 100k} the report times, with indexes on and with
// the StoreOptions::secondary_indexes=false ablation (`indexes_off`):
//   * find_one by unique name      -- the create_named/find_named hot path,
//                                     fanned in over the Named subclass closure;
//   * find by duplicated group     -- O(result) vs O(N);
//   * objects_of on a selective class (Macro, 1% of the store) -- the
//     objects_of("Project")-among-everything shape JCF sweeps take;
//   * linked on the hub            -- edge-set probe vs O(degree) scan.
//
// The asymptotic claim to reproduce: indexed find_one latency is flat
// across 1k -> 100k while the ablation grows ~linearly.
// scripts/run_benches.py gates on >= 10x at 100k (--check-index-speedup).

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "jfm/oms/store.hpp"
#include "jfm/support/rng.hpp"

namespace {

using namespace jfm;
using oms::AttrValue;

constexpr std::size_t kSizes[] = {1000, 10000, 100000};

oms::Schema query_schema() {
  oms::Schema schema;
  auto must = [](support::Status st) {
    if (!st.ok()) std::abort();
  };
  must(schema.define_class({"Named", "", {{"name", oms::AttrType::text}}}));
  must(schema.define_class({"Cell", "Named", {{"group", oms::AttrType::integer}}}));
  must(schema.define_class({"Macro", "Cell", {}}));
  must(schema.define_relation({"edge", "Cell", "Cell", oms::Cardinality::many_to_many}));
  return schema;
}

struct QueryEnv {
  support::SimClock clock;
  oms::Store store;
  std::size_t size;
  oms::ObjectId hub;
  std::vector<oms::ObjectId> hub_targets;

  QueryEnv(std::size_t n, bool indexes)
      : store(query_schema(), &clock, oms::StoreOptions{.secondary_indexes = indexes}),
        size(n) {
    std::vector<oms::ObjectId> ids;
    ids.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto id = *store.create(i % 100 == 0 ? "Macro" : "Cell");
      if (!store.set(id, "name", AttrValue("obj" + std::to_string(i))).ok()) std::abort();
      if (!store.set(id, "group", AttrValue(static_cast<std::int64_t>(i % 64))).ok()) {
        std::abort();
      }
      ids.push_back(id);
    }
    // one hub with ~sqrt(N) fan-out so linked()'s O(degree) scan hurts
    hub = ids[0];
    std::size_t degree = 1;
    while (degree * degree < n) ++degree;
    for (std::size_t i = 1; i <= degree && i < n; ++i) {
      if (!store.link("edge", hub, ids[i]).ok()) std::abort();
      hub_targets.push_back(ids[i]);
    }
  }
};

/// ns per call of `fn`, amortized over enough reps for a stable read.
template <typename Fn>
std::uint64_t time_ns_per_op(std::size_t reps, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < reps; ++i) fn(i);
  const auto end = std::chrono::steady_clock::now();
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start).count());
  return ns / (reps == 0 ? 1 : reps);
}

struct OpTimes {
  std::uint64_t find_one_ns = 0;
  std::uint64_t find_group_ns = 0;
  std::uint64_t objects_of_ns = 0;
  std::uint64_t linked_ns = 0;
};

OpTimes measure(QueryEnv& env) {
  OpTimes t;
  support::Rng rng(1234);
  const std::size_t n = env.size;
  // the scan path is O(N) per query; keep rep counts size-aware so the
  // whole sweep stays interactive
  const bool indexed = env.store.options().secondary_indexes;
  const std::size_t point_reps = indexed ? 20000 : std::max<std::size_t>(4, 2000000 / n);
  const std::size_t heavy_reps = std::max<std::size_t>(4, (indexed ? 400000 : 2000000) / n);

  std::size_t found = 0;
  t.find_one_ns = time_ns_per_op(point_reps, [&](std::size_t) {
    auto hit = env.store.find_one("Named", "name",
                                  AttrValue("obj" + std::to_string(rng.below(n))));
    if (hit.has_value()) ++found;
  });
  if (found != point_reps) std::abort();  // every probe must hit

  t.find_group_ns = time_ns_per_op(heavy_reps, [&](std::size_t i) {
    auto rows = env.store.find("Cell", "group", AttrValue(static_cast<std::int64_t>(i % 64)));
    if (rows.empty()) std::abort();
  });

  t.objects_of_ns = time_ns_per_op(std::max<std::size_t>(4, heavy_reps / 4), [&](std::size_t) {
    auto rows = env.store.objects_of("Macro");  // 1% of the store
    if (rows.size() != n / 100) std::abort();
  });

  std::size_t linked_hits = 0;
  t.linked_ns = time_ns_per_op(point_reps, [&](std::size_t i) {
    // alternate present/absent probes against the hub's edge list
    if (i % 2 == 0) {
      linked_hits += env.store.linked("edge", env.hub, rng.pick(env.hub_targets)) ? 1 : 0;
    } else {
      linked_hits += env.store.linked("edge", rng.pick(env.hub_targets), env.hub) ? 1 : 0;
    }
  });
  if (linked_hits != point_reps / 2) std::abort();
  return t;
}

void print_report() {
  benchutil::header("oms query engine: secondary indexes vs full scan");
  auto& registry = support::telemetry::Registry::global();
  char line[256];
  std::uint64_t indexed_100k_find_one = 0;
  std::uint64_t scan_100k_find_one = 0;
  for (std::size_t n : kSizes) {
    for (bool indexes : {true, false}) {
      QueryEnv env(n, indexes);
      OpTimes t = measure(env);
      const char* mode = indexes ? "indexed" : "indexes_off";
      std::snprintf(line, sizeof(line),
                    "n=%6zu %-11s  find_one %8llu ns  find(group) %8llu ns  "
                    "objects_of %8llu ns  linked %6llu ns",
                    n, mode, static_cast<unsigned long long>(t.find_one_ns),
                    static_cast<unsigned long long>(t.find_group_ns),
                    static_cast<unsigned long long>(t.objects_of_ns),
                    static_cast<unsigned long long>(t.linked_ns));
      benchutil::row(line);
      // machine-readable rows for scripts/run_benches.py
      for (const auto& [op, ns] :
           {std::pair<const char*, std::uint64_t>{"find_one", t.find_one_ns},
            {"find_group", t.find_group_ns},
            {"objects_of", t.objects_of_ns},
            {"linked", t.linked_ns}}) {
        std::printf("JFM_OMS_QUERY size=%zu mode=%s op=%s ns_per_op=%llu\n", n, mode, op,
                    static_cast<unsigned long long>(ns));
        registry
            .gauge("bench.oms_query.n" + std::to_string(n) + "." + mode + "." + op + ".ns")
            .set(static_cast<std::int64_t>(ns));
      }
      if (n == 100000 && indexes) indexed_100k_find_one = t.find_one_ns;
      if (n == 100000 && !indexes) scan_100k_find_one = t.find_one_ns;
    }
  }
  const double speedup = indexed_100k_find_one == 0
                             ? 0.0
                             : static_cast<double>(scan_100k_find_one) /
                                   static_cast<double>(indexed_100k_find_one);
  std::snprintf(line, sizeof(line),
                "100k find_one: indexed %llu ns vs indexes_off %llu ns -> %.1fx",
                static_cast<unsigned long long>(indexed_100k_find_one),
                static_cast<unsigned long long>(scan_100k_find_one), speedup);
  benchutil::row(line);
  std::printf("JFM_OMS_QUERY_META sizes=%zu find_one_speedup_100k=%.3f\n",
              std::size(kSizes), speedup);
}

// -- google-benchmark micro-timings ----------------------------------------

void BM_FindOne(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  QueryEnv env(n, state.range(1) != 0);
  support::Rng rng(99);
  for (auto _ : state) {
    auto hit = env.store.find_one("Named", "name",
                                  AttrValue("obj" + std::to_string(rng.below(n))));
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_FindOne)
    ->Args({10000, 1})
    ->Args({10000, 0})
    ->Args({100000, 1})
    ->Unit(benchmark::kNanosecond);

void BM_LinkedHub(benchmark::State& state) {
  QueryEnv env(10000, state.range(0) != 0);
  support::Rng rng(7);
  for (auto _ : state) {
    bool hit = env.store.linked("edge", env.hub, rng.pick(env.hub_targets));
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_LinkedHub)->Arg(1)->Arg(0)->Unit(benchmark::kNanosecond);

}  // namespace

JFM_BENCH_MAIN(print_report)
