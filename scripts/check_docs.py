#!/usr/bin/env python3
"""Documentation checks: dead links, orphan pages, stale C++ snippets.

Five passes over the user-facing markdown (README, DESIGN, EXPERIMENTS,
docs/*.md):

1. every relative markdown link must point at a file that exists;
2. every ``docs/*.md`` page must be reachable from ``docs/index.md``
   (the docs landing page) by following relative links -- an orphan
   page is a page nobody will find. README.md must in turn link to the
   index, so the whole docs tree hangs off one entry point;
3. every fenced ``cpp`` block must still compile against the current
   headers (``-fsyntax-only``, no linking);
4. every ``jfm::``-qualified symbol mentioned in ANY fenced code block
   (including ``text`` transcripts) must resolve: each of its name
   components has to appear in some header under ``src/*/include``.
   This catches docs that keep naming an API after a refactor renamed
   or removed it, in blocks the compile pass never sees;
5. every ``BENCH_*.json`` mentioned anywhere in the docs must exist in
   the repo root -- a renamed or retired benchmark otherwise leaves
   docs citing numbers nobody can regenerate.

Snippets are documentation, not translation units, so each block is
wrapped before compilation: ``#include`` lines are hoisted to the top
of the generated file, the rest goes into a lambda inside a throwaway
function. A few ambient names that snippets conventionally rely on
(``fs``, ``jcf``, ``hybrid``, ``xfer_dir``, ``clock``, ``alice``) are
bound to declared-but-never-defined accessor functions, which is all
``-fsyntax-only`` needs.

Exit status 0 = clean; 1 = problems (listed on stderr). stdlib only.
"""

import glob
import os
import re
import shutil
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DOC_FILES = sorted(
    [
        os.path.join(REPO, "README.md"),
        os.path.join(REPO, "DESIGN.md"),
        os.path.join(REPO, "EXPERIMENTS.md"),
    ]
    + glob.glob(os.path.join(REPO, "docs", "*.md"))
)

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```(\w*)\s*$")

# Free names doc snippets may use without declaring; each is bound to a
# reference returned by a declared-only accessor.
AMBIENT = [
    ("clock", "jfm::support::SimClock"),
    ("fs", "jfm::vfs::FileSystem"),
    ("xfer_dir", "jfm::vfs::Path"),
    ("jcf", "jfm::jcf::JcfFramework"),
    ("hybrid", "jfm::coupling::HybridFramework"),
    ("alice", "jfm::jcf::UserRef"),
]

PREAMBLE_INCLUDES = [
    "<cstdio>",
    "<string>",
    "<vector>",
    '"jfm/coupling/desktop.hpp"',
    '"jfm/coupling/hybrid.hpp"',
    '"jfm/coupling/mapping.hpp"',
    '"jfm/coupling/resolvers.hpp"',
    '"jfm/support/telemetry.hpp"',
]


def rel(path):
    return os.path.relpath(path, REPO)


def check_links(problems):
    for doc in DOC_FILES:
        with open(doc, encoding="utf-8") as f:
            text = f.read()
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if re.match(r"[a-z]+:", target) or target.startswith("#"):
                continue  # external URL or in-page anchor
            target = target.split("#", 1)[0]
            resolved = os.path.normpath(os.path.join(os.path.dirname(doc), target))
            if not os.path.exists(resolved):
                line = text.count("\n", 0, match.start()) + 1
                problems.append(
                    "%s:%d: dead link -> %s" % (rel(doc), line, match.group(1))
                )


def check_reachability(problems):
    """Every docs/*.md page must be reachable from docs/index.md."""
    index = os.path.join(REPO, "docs", "index.md")
    if not os.path.isfile(index):
        problems.append("docs/index.md: missing -- the docs need a landing page")
        return
    reachable = set()
    frontier = [index]
    while frontier:
        doc = os.path.normpath(frontier.pop())
        if doc in reachable or not os.path.isfile(doc):
            continue
        reachable.add(doc)
        if not doc.endswith(".md"):
            continue
        with open(doc, encoding="utf-8") as f:
            text = f.read()
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if re.match(r"[a-z]+:", target) or target.startswith("#"):
                continue
            target = target.split("#", 1)[0]
            frontier.append(os.path.join(os.path.dirname(doc), target))
    for doc in sorted(glob.glob(os.path.join(REPO, "docs", "*.md"))):
        if os.path.normpath(doc) not in reachable:
            problems.append(
                "%s: orphan page -- not reachable from docs/index.md via links"
                % rel(doc)
            )


BENCH_RE = re.compile(r"\bBENCH_\w+\.json\b")


def check_bench_refs(problems):
    """Every BENCH_*.json a doc cites must exist in the repo root."""
    for doc in DOC_FILES:
        with open(doc, encoding="utf-8") as f:
            text = f.read()
        for match in BENCH_RE.finditer(text):
            if not os.path.isfile(os.path.join(REPO, match.group(0))):
                line = text.count("\n", 0, match.start()) + 1
                problems.append(
                    "%s:%d: cites %s, which does not exist in the repo root "
                    "(stale benchmark reference?)" % (rel(doc), line, match.group(0))
                )


SYMBOL_RE = re.compile(r"\bjfm::((?:[A-Za-z_]\w*::)*[A-Za-z_]\w*)")


def header_identifiers():
    """Every identifier appearing in any header under src/*/include."""
    idents = set()
    pattern = os.path.join(REPO, "src", "*", "include", "**", "*.hpp")
    for header in glob.glob(pattern, recursive=True):
        with open(header, encoding="utf-8") as f:
            idents.update(re.findall(r"[A-Za-z_]\w*", f.read()))
    return idents


def fenced_lines(doc):
    """Yield (line_number, line) for lines inside ANY fenced block."""
    with open(doc, encoding="utf-8") as f:
        lines = f.read().splitlines()
    in_block = False
    for i, line in enumerate(lines, 1):
        if FENCE_RE.match(line) or (in_block and line.strip() == "```"):
            in_block = not in_block
            continue
        if in_block:
            yield i, line


def check_symbols(problems):
    """jfm::-qualified names in fenced blocks must exist in some header."""
    idents = header_identifiers()
    if not idents:
        problems.append("symbol check: no headers under src/*/include")
        return
    for doc in DOC_FILES:
        for line_no, line in fenced_lines(doc):
            for match in SYMBOL_RE.finditer(line):
                for part in match.group(1).split("::"):
                    if part not in idents:
                        problems.append(
                            "%s:%d: jfm::%s names '%s', which no header under "
                            "src/*/include mentions"
                            % (rel(doc), line_no, match.group(1), part)
                        )
                        break


def cpp_blocks(doc):
    """Yield (first_line_number, [lines]) per fenced cpp block."""
    with open(doc, encoding="utf-8") as f:
        lines = f.read().splitlines()
    block, start, lang = None, 0, None
    for i, line in enumerate(lines, 1):
        fence = FENCE_RE.match(line)
        if fence and block is None:
            lang, block, start = fence.group(1), [], i + 1
        elif line.strip() == "```" and block is not None:
            if lang == "cpp":
                yield start, block
            block, lang = None, None
        elif block is not None:
            block.append(line)


def generate_tu(blocks):
    """One translation unit exercising every snippet of one document."""
    includes = list(PREAMBLE_INCLUDES)
    bodies = []
    for n, (line, code) in enumerate(blocks):
        body = []
        for snippet_line in code:
            stripped = snippet_line.strip()
            if stripped.startswith("#include"):
                inc = stripped[len("#include") :].strip()
                if inc not in includes:
                    includes.append(inc)
            else:
                body.append(snippet_line)
        bindings = "".join(
            "  auto& %s = ambient_%s(); (void)%s;\n" % (name, name, name)
            for name, _ in AMBIENT
        )
        bodies.append(
            "// snippet from line %d\n"
            "[[maybe_unused]] static void doc_snippet_%d() {\n"
            "%s"
            "  auto snippet = [&] {\n%s\n  };\n"
            "  (void)snippet;\n"
            "}\n" % (line, n, bindings, "\n".join("    " + b for b in body))
        )
    tu = ["// generated by scripts/check_docs.py -- never committed"]
    tu += ["#include %s" % inc for inc in includes]
    tu.append("using namespace jfm;")
    tu += [
        "%s& ambient_%s();" % (type_name, name) for name, type_name in AMBIENT
    ]
    tu.append("")
    tu += bodies
    return "\n".join(tu) + "\n"


def check_snippets(problems):
    compiler = shutil.which("c++") or shutil.which("g++") or shutil.which("clang++")
    if compiler is None:
        problems.append("no C++ compiler found for snippet checking")
        return
    include_dirs = sorted(glob.glob(os.path.join(REPO, "src", "*", "include")))
    with tempfile.TemporaryDirectory(prefix="jfm-docs-") as tmp:
        for doc in DOC_FILES:
            blocks = list(cpp_blocks(doc))
            if not blocks:
                continue
            tu_path = os.path.join(tmp, rel(doc).replace(os.sep, "_") + ".cpp")
            with open(tu_path, "w", encoding="utf-8") as f:
                f.write(generate_tu(blocks))
            cmd = [compiler, "-fsyntax-only", "-std=c++20", tu_path]
            cmd += ["-I" + d for d in include_dirs]
            result = subprocess.run(cmd, capture_output=True, text=True)
            if result.returncode != 0:
                problems.append(
                    "%s: cpp snippet no longer compiles:\n%s"
                    % (rel(doc), result.stderr.strip())
                )


def main():
    problems = []
    check_links(problems)
    check_reachability(problems)
    check_snippets(problems)
    check_symbols(problems)
    check_bench_refs(problems)
    if problems:
        for p in problems:
            print(p, file=sys.stderr)
        print("check_docs: %d problem(s)" % len(problems), file=sys.stderr)
        return 1
    n_blocks = sum(len(list(cpp_blocks(doc))) for doc in DOC_FILES)
    print(
        "check_docs: %d file(s) clean, %d cpp snippet(s) compile"
        % (len(DOC_FILES), n_blocks)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
