#!/usr/bin/env python3
"""Run every bench binary and collect its metrics into BENCH_*.json.

Each bench prints a human-readable report table, optional
machine-readable ``JFM_PARALLEL_CHECKOUT`` lines, and one
``JFM_METRICS <name> <json>`` line carrying the full telemetry
registry snapshot (counters / gauges / histograms). This harness:

1. discovers ``bench_*`` executables under ``<build-dir>/bench``;
2. runs each one (``--quick`` skips the google-benchmark micro-timings
   so the whole sweep finishes in seconds);
3. writes one ``BENCH_<name>.json`` blob per binary into the repo root
   (the blobs are checked in: EXPERIMENTS.md cites them);
4. with ``--check-scaling``, gates on the parallel-checkout bench: the
   8-worker cold-cache speedup must reach the scaling threshold;
5. with ``--check-cow-speedup``, gates on the s3.6 bench's COW section:
   the cold ``copy_file`` batch at the largest payload must beat the
   ``cow_extents=false`` ablation by ``--min-cow-speedup`` (default
   10x). Core-independent: both sides run single-threaded, and the COW
   side does no payload work at all;
6. with ``--check-index-speedup``, gates on the OMS query bench: the
   indexed ``find_one`` at 100k objects must beat the ``indexes_off``
   ablation by ``--min-index-speedup`` (default 10x). Unlike the
   scaling gate this bar is core-independent: both sides of the ratio
   run single-threaded on the same machine;
7. with ``--check-fault-overhead``, gates on the fault-recovery bench:
   its ``disabled_warm`` time (the fault-tolerant export path with
   injection disarmed) must stay within ``--max-fault-overhead``
   (default 2%) of the parallel-checkout bench's warm time at the same
   worker count -- the two binaries run the byte-identical workload,
   so a drift here means the disarmed hook points grew a real cost.
   ``--fault-overhead-slack-us`` absorbs scheduler noise on very fast
   warm batches;
8. with ``--check-warm-speedup``, gates on the zero-rehash warm path:
   at workers=1 the warm run must beat the cold run by
   ``--min-warm-speedup`` (default 2x), both for the raw
   ``export_batch`` rows (cold / warm) and for the end-to-end
   ``checkout_hierarchy`` rows (hier_cold / hier_warm). Core-
   independent: both sides are single-threaded; the warm side answers
   from hash memos and should touch zero payload bytes (the bench
   aborts on its own if it does not);
9. with ``--check-incremental-speedup``, gates on the change-feed
   delta path (docs/incremental-checkout.md): at 1% churn the
   incremental ``checkout_hierarchy`` must beat the full warm walk by
   ``--min-incremental-speedup`` (default 5x), and the
   ``coupling.checkout.skipped.count`` counter must be non-zero --
   proof the delta path really skipped unchanged cellviews rather than
   walking everything. Core-independent: both sides run
   single-threaded over the same churn event;
10. with ``--check-wal-overhead``, gates on the durable-OMS bench
   (docs/persistence.md): the group-commit WAL mode must keep its
   commit-path wall-time within ``--max-wal-overhead`` (default 15%)
   of the ``durability=off`` ablation. Core-independent: all three
   modes run the byte-identical single-threaded mutation sequence, so
   the ratio measures only the journalling tax.

Every blob additionally carries an ``executor`` section -- the
``executor.*`` counters and gauges of the shared work-stealing pool
(docs/executor.md) -- so scheduler behaviour (steals, task counts,
queue depth) is diffable across checked-in BENCH_*.json revisions.

The threshold is core-aware: demanding 2x from a single-core container
is physics, not a regression, so the effective bar is
``min(--min-scaling, 0.5 * cores)``. On >= 4 cores that is the full
--min-scaling; on 1 core it degrades to 0.5x, which still catches a
true serialization bug (worker fan-out that *slows down* checkout).

Exit status 0 = all benches ran (and the gate passed); 1 otherwise.
stdlib only.
"""

import argparse
import json
import os
import re
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

METRICS_RE = re.compile(r"^JFM_METRICS\s+(\S+)\s+(\{.*\})\s*$")
CHECKOUT_RE = re.compile(
    r"^JFM_PARALLEL_CHECKOUT\s+workers=(\d+)\s+mode=(\w+)\s+wall_us=(\d+)"
    r"\s+bytes=(\d+)\s+speedup=([\d.]+)\s*$")
META_RE = re.compile(
    r"^JFM_PARALLEL_CHECKOUT_META\s+cores=(\d+)\s+dovs=(\d+)"
    r"\s+payload_bytes=(\d+)\s+exclusive8_cold_us=(\d+)\s*$")
OMS_QUERY_RE = re.compile(
    r"^JFM_OMS_QUERY\s+size=(\d+)\s+mode=(\w+)\s+op=(\w+)\s+ns_per_op=(\d+)\s*$")
OMS_QUERY_META_RE = re.compile(
    r"^JFM_OMS_QUERY_META\s+sizes=(\d+)\s+find_one_speedup_100k=([\d.]+)\s*$")
FAULT_RE = re.compile(
    r"^JFM_FAULT_RECOVERY\s+mode=(\w+)\s+workers=(\d+)\s+wall_us=(\d+)"
    r"\s+retries=(\d+)\s+rollbacks=(\d+)\s+injected=(\d+)\s*$")
FAULT_META_RE = re.compile(
    r"^JFM_FAULT_RECOVERY_META\s+workers=(\d+)\s+dovs=(\d+)"
    r"\s+payload_bytes=(\d+)\s+armed_ratio=([\d.]+)\s*$")
COW_RE = re.compile(
    r"^JFM_S36_COW\s+size=(\d+)\s+mode=(\w+)\s+wall_us=(\d+)"
    r"\s+copies=(\d+)\s+physical_bytes=(\d+)\s*$")
COW_META_RE = re.compile(
    r"^JFM_S36_COW_META\s+largest_size=(\d+)\s+copies=(\d+)"
    r"\s+cold_copy_speedup=([\d.]+)\s*$")
INCR_RE = re.compile(
    r"^JFM_INCR\s+churn_pct=(\d+)\s+mode=(\w+)\s+wall_us=(\d+)"
    r"\s+requests=(\d+)\s+skipped=(\d+)\s+feed=(\d+)\s+speedup=([\d.]+)\s*$")
INCR_META_RE = re.compile(
    r"^JFM_INCR_META\s+cells=(\d+)\s+views=(\d+)\s+incr_speedup_1pct=([\d.]+)\s*$")
WAL_RE = re.compile(
    r"^JFM_WAL\s+mode=(\w+)\s+commits=(\d+)\s+wall_us=(\d+)\s+ns_per_commit=(\d+)"
    r"\s+wal_bytes=(\d+)\s+flushes=(\d+)\s*$")
WAL_META_RE = re.compile(
    r"^JFM_WAL_META\s+commits=(\d+)\s+group=(\d+)\s+overhead_wal=(-?[\d.]+)"
    r"\s+overhead_group=(-?[\d.]+)\s*$")


def discover(build_dir):
    bench_dir = os.path.join(build_dir, "bench")
    if not os.path.isdir(bench_dir):
        return []
    found = []
    for entry in sorted(os.listdir(bench_dir)):
        path = os.path.join(bench_dir, entry)
        if entry.startswith("bench_") and os.path.isfile(path) and os.access(path, os.X_OK):
            found.append(path)
    return found


def run_bench(path, quick):
    argv = [path]
    if quick:
        # a filter nothing matches: the report table and the metrics
        # line still print, the micro-timings are skipped
        argv.append("--benchmark_filter=__quick_skip__")
    proc = subprocess.run(argv, capture_output=True, text=True, cwd=REPO)
    return proc


def parse_output(text):
    """Split a bench's stdout into its machine-readable pieces."""
    metrics = None
    rows = []
    meta = None
    query_rows = []
    query_meta = None
    fault_rows = []
    fault_meta = None
    cow_rows = []
    cow_meta = None
    incr_rows = []
    incr_meta = None
    wal_rows = []
    wal_meta = None
    for line in text.splitlines():
        m = METRICS_RE.match(line)
        if m:
            try:
                metrics = json.loads(m.group(2))
            except json.JSONDecodeError:
                metrics = None
            continue
        m = CHECKOUT_RE.match(line)
        if m:
            rows.append({
                "workers": int(m.group(1)),
                "mode": m.group(2),
                "wall_us": int(m.group(3)),
                "bytes": int(m.group(4)),
                "speedup": float(m.group(5)),
            })
            continue
        m = META_RE.match(line)
        if m:
            meta = {
                "cores": int(m.group(1)),
                "dovs": int(m.group(2)),
                "payload_bytes": int(m.group(3)),
                "exclusive8_cold_us": int(m.group(4)),
            }
            continue
        m = OMS_QUERY_RE.match(line)
        if m:
            query_rows.append({
                "size": int(m.group(1)),
                "mode": m.group(2),
                "op": m.group(3),
                "ns_per_op": int(m.group(4)),
            })
            continue
        m = OMS_QUERY_META_RE.match(line)
        if m:
            query_meta = {
                "sizes": int(m.group(1)),
                "find_one_speedup_100k": float(m.group(2)),
            }
            continue
        m = FAULT_RE.match(line)
        if m:
            fault_rows.append({
                "mode": m.group(1),
                "workers": int(m.group(2)),
                "wall_us": int(m.group(3)),
                "retries": int(m.group(4)),
                "rollbacks": int(m.group(5)),
                "injected": int(m.group(6)),
            })
            continue
        m = FAULT_META_RE.match(line)
        if m:
            fault_meta = {
                "workers": int(m.group(1)),
                "dovs": int(m.group(2)),
                "payload_bytes": int(m.group(3)),
                "armed_ratio": float(m.group(4)),
            }
            continue
        m = COW_RE.match(line)
        if m:
            cow_rows.append({
                "size": int(m.group(1)),
                "mode": m.group(2),
                "wall_us": int(m.group(3)),
                "copies": int(m.group(4)),
                "physical_bytes": int(m.group(5)),
            })
            continue
        m = COW_META_RE.match(line)
        if m:
            cow_meta = {
                "largest_size": int(m.group(1)),
                "copies": int(m.group(2)),
                "cold_copy_speedup": float(m.group(3)),
            }
            continue
        m = INCR_RE.match(line)
        if m:
            incr_rows.append({
                "churn_pct": int(m.group(1)),
                "mode": m.group(2),
                "wall_us": int(m.group(3)),
                "requests": int(m.group(4)),
                "skipped": int(m.group(5)),
                "feed": int(m.group(6)),
                "speedup": float(m.group(7)),
            })
            continue
        m = INCR_META_RE.match(line)
        if m:
            incr_meta = {
                "cells": int(m.group(1)),
                "views": int(m.group(2)),
                "incr_speedup_1pct": float(m.group(3)),
            }
            continue
        m = WAL_RE.match(line)
        if m:
            wal_rows.append({
                "mode": m.group(1),
                "commits": int(m.group(2)),
                "wall_us": int(m.group(3)),
                "ns_per_commit": int(m.group(4)),
                "wal_bytes": int(m.group(5)),
                "flushes": int(m.group(6)),
            })
            continue
        m = WAL_META_RE.match(line)
        if m:
            wal_meta = {
                "commits": int(m.group(1)),
                "group": int(m.group(2)),
                "overhead_wal": float(m.group(3)),
                "overhead_group": float(m.group(4)),
            }
    return (metrics, rows, meta, query_rows, query_meta, fault_rows, fault_meta,
            cow_rows, cow_meta, incr_rows, incr_meta, wal_rows, wal_meta)


def scaling_threshold(min_scaling, cores):
    return min(min_scaling, 0.5 * max(1, cores))


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory (default: build)")
    parser.add_argument("--quick", action="store_true",
                        help="skip google-benchmark micro-timings")
    parser.add_argument("--check-scaling", action="store_true",
                        help="fail unless 8-worker cold checkout reaches the scaling bar")
    parser.add_argument("--min-scaling", type=float, default=2.0,
                        help="required 8-worker cold speedup on >=4 cores (default: 2.0)")
    parser.add_argument("--check-index-speedup", action="store_true",
                        help="fail unless indexed find_one at 100k objects beats the "
                             "indexes_off ablation by --min-index-speedup")
    parser.add_argument("--min-index-speedup", type=float, default=10.0,
                        help="required 100k find_one speedup over the ablation (default: 10.0)")
    parser.add_argument("--check-cow-speedup", action="store_true",
                        help="fail unless the COW cold copy_file batch at the largest "
                             "payload beats the cow-off ablation by --min-cow-speedup")
    parser.add_argument("--min-cow-speedup", type=float, default=10.0,
                        help="required largest-size cold-copy speedup over the "
                             "cow_extents=false ablation (default: 10.0)")
    parser.add_argument("--check-fault-overhead", action="store_true",
                        help="fail if the fault-tolerant warm path (injection disarmed) "
                             "exceeds the parallel-checkout warm baseline by more than "
                             "--max-fault-overhead")
    parser.add_argument("--max-fault-overhead", type=float, default=0.02,
                        help="allowed warm-path overhead ratio with faults disabled "
                             "(default: 0.02 = 2%%)")
    parser.add_argument("--check-warm-speedup", action="store_true",
                        help="fail unless the workers=1 warm checkout beats cold by "
                             "--min-warm-speedup, for both the export_batch and the "
                             "checkout_hierarchy row pairs")
    parser.add_argument("--min-warm-speedup", type=float, default=2.0,
                        help="required workers=1 cold/warm wall-time ratio "
                             "(default: 2.0)")
    parser.add_argument("--check-incremental-speedup", action="store_true",
                        help="fail unless the change-feed delta checkout beats the full "
                             "warm walk by --min-incremental-speedup at 1%% churn, with "
                             "a non-zero coupling.checkout.skipped.count in the metrics")
    parser.add_argument("--min-incremental-speedup", type=float, default=5.0,
                        help="required 1%%-churn delta-vs-full-walk wall-time ratio "
                             "(default: 5.0)")
    parser.add_argument("--check-wal-overhead", action="store_true",
                        help="fail unless the durable store with group commit stays "
                             "within --max-wal-overhead of the volatile (durability "
                             "off) baseline on the WAL bench's commit workload")
    parser.add_argument("--max-wal-overhead", type=float, default=0.15,
                        help="allowed group-commit wall-time overhead ratio vs the "
                             "durability-off baseline (default: 0.15 = 15%%)")
    parser.add_argument("--fault-overhead-slack-us", type=int, default=500,
                        help="absolute noise allowance on top of the ratio, in "
                             "microseconds (default: 500)")
    parser.add_argument("--out-dir", default=REPO,
                        help="where BENCH_*.json blobs go (default: repo root)")
    args = parser.parse_args()

    build_dir = args.build_dir if os.path.isabs(args.build_dir) \
        else os.path.join(REPO, args.build_dir)
    benches = discover(build_dir)
    if not benches:
        print(f"run_benches: no bench_* executables under {build_dir}/bench "
              f"(build with -DJFM_BUILD_BENCHES=ON)", file=sys.stderr)
        return 1

    failures = []
    checkout_rows, checkout_meta = [], None
    oms_query_rows, oms_query_meta = [], None
    fault_rows, fault_meta = [], None
    cow_rows, cow_meta = [], None
    incr_rows, incr_meta, incr_metrics = [], None, None
    wal_rows, wal_meta = [], None
    for path in benches:
        name = os.path.basename(path)
        proc = run_bench(path, args.quick)
        if proc.returncode != 0:
            failures.append(f"{name}: exit {proc.returncode}")
            sys.stderr.write(proc.stdout[-2000:] + proc.stderr[-2000:])
            continue
        (metrics, rows, meta, query_rows, query_meta, f_rows, f_meta,
         c_rows, c_meta, i_rows, i_meta, w_rows, w_meta) = parse_output(proc.stdout)
        blob = {
            "bench": name,
            "quick": args.quick,
            "metrics": metrics,
        }
        if metrics:
            executor = {
                "counters": {k: v for k, v in (metrics.get("counters") or {}).items()
                             if k.startswith("executor.")},
                "gauges": {k: v for k, v in (metrics.get("gauges") or {}).items()
                           if k.startswith("executor.")},
            }
            if executor["counters"] or executor["gauges"]:
                blob["executor"] = executor
        if rows:
            blob["parallel_checkout"] = {"runs": rows, "meta": meta}
            checkout_rows, checkout_meta = rows, meta
        if query_rows:
            blob["oms_query"] = {"runs": query_rows, "meta": query_meta}
            oms_query_rows, oms_query_meta = query_rows, query_meta
        if f_rows:
            blob["fault_recovery"] = {"runs": f_rows, "meta": f_meta}
            fault_rows, fault_meta = f_rows, f_meta
        if c_rows:
            blob["s36_cow"] = {"runs": c_rows, "meta": c_meta}
            cow_rows, cow_meta = c_rows, c_meta
        if i_rows:
            blob["incremental"] = {"runs": i_rows, "meta": i_meta}
            incr_rows, incr_meta, incr_metrics = i_rows, i_meta, metrics
        if w_rows:
            blob["wal_overhead"] = {"runs": w_rows, "meta": w_meta}
            wal_rows, wal_meta = w_rows, w_meta
        out = os.path.join(args.out_dir, f"BENCH_{name}.json")
        with open(out, "w") as fh:
            json.dump(blob, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"run_benches: {name} ok -> {os.path.relpath(out, REPO)}")

    if args.check_scaling:
        if not checkout_rows:
            failures.append("scaling gate: no JFM_PARALLEL_CHECKOUT output found")
        else:
            cores = checkout_meta["cores"] if checkout_meta else 1
            bar = scaling_threshold(args.min_scaling, cores)
            cold8 = [r for r in checkout_rows
                     if r["workers"] == 8 and r["mode"] == "cold"]
            if not cold8:
                failures.append("scaling gate: no workers=8 cold run")
            elif cold8[0]["speedup"] < bar:
                failures.append(
                    f"scaling gate: 8-worker cold speedup {cold8[0]['speedup']:.2f}x "
                    f"< required {bar:.2f}x (cores={cores})")
            else:
                print(f"run_benches: scaling gate ok "
                      f"({cold8[0]['speedup']:.2f}x >= {bar:.2f}x on {cores} cores)")

    if args.check_index_speedup:
        if not oms_query_rows:
            failures.append("index gate: no JFM_OMS_QUERY output found")
        else:
            by_mode = {r["mode"]: r["ns_per_op"] for r in oms_query_rows
                       if r["size"] == 100000 and r["op"] == "find_one"}
            if "indexed" not in by_mode or "indexes_off" not in by_mode:
                failures.append("index gate: missing 100k find_one rows")
            else:
                speedup = by_mode["indexes_off"] / max(1, by_mode["indexed"])
                if speedup < args.min_index_speedup:
                    failures.append(
                        f"index gate: 100k find_one speedup {speedup:.1f}x "
                        f"< required {args.min_index_speedup:.1f}x")
                else:
                    print(f"run_benches: index gate ok "
                          f"({speedup:.1f}x >= {args.min_index_speedup:.1f}x at 100k)")

    if args.check_cow_speedup:
        if cow_meta is None:
            failures.append("cow gate: no JFM_S36_COW_META output found")
        elif cow_meta["cold_copy_speedup"] < args.min_cow_speedup:
            failures.append(
                f"cow gate: largest-size cold copy speedup "
                f"{cow_meta['cold_copy_speedup']:.1f}x < required "
                f"{args.min_cow_speedup:.1f}x "
                f"(size={cow_meta['largest_size']})")
        else:
            print(f"run_benches: cow gate ok "
                  f"({cow_meta['cold_copy_speedup']:.1f}x >= "
                  f"{args.min_cow_speedup:.1f}x at {cow_meta['largest_size']} B)")

    if args.check_warm_speedup:
        if not checkout_rows:
            failures.append("warm gate: no JFM_PARALLEL_CHECKOUT output found")
        else:
            pairs = [("cold", "warm"), ("hier_cold", "hier_warm")]
            for cold_mode, warm_mode in pairs:
                w1 = {r["mode"]: r["wall_us"] for r in checkout_rows
                      if r["workers"] == 1 and r["mode"] in (cold_mode, warm_mode)}
                if cold_mode not in w1 or warm_mode not in w1:
                    failures.append(
                        f"warm gate: missing workers=1 {cold_mode}/{warm_mode} rows")
                    continue
                ratio = w1[cold_mode] / max(1, w1[warm_mode])
                if ratio < args.min_warm_speedup:
                    failures.append(
                        f"warm gate: {warm_mode} {w1[warm_mode]} us is only "
                        f"{ratio:.2f}x faster than {cold_mode} {w1[cold_mode]} us "
                        f"(required {args.min_warm_speedup:.2f}x)")
                else:
                    print(f"run_benches: warm gate ok ({cold_mode} {w1[cold_mode]} us "
                          f"/ {warm_mode} {w1[warm_mode]} us = {ratio:.2f}x >= "
                          f"{args.min_warm_speedup:.2f}x)")

    if args.check_incremental_speedup:
        incr1 = [r for r in incr_rows
                 if r["churn_pct"] == 1 and r["mode"] == "incr"]
        if not incr1:
            failures.append("incremental gate: no churn_pct=1 incr JFM_INCR row")
        else:
            row = incr1[0]
            skipped_counter = ((incr_metrics or {}).get("counters") or {}).get(
                "coupling.checkout.skipped.count", 0)
            if row["speedup"] < args.min_incremental_speedup:
                failures.append(
                    f"incremental gate: 1%-churn delta speedup {row['speedup']:.2f}x "
                    f"< required {args.min_incremental_speedup:.2f}x "
                    f"(delta {row['wall_us']} us)")
            elif row["skipped"] == 0 or skipped_counter == 0:
                failures.append(
                    f"incremental gate: delta ran but skipped nothing "
                    f"(row skipped={row['skipped']}, "
                    f"coupling.checkout.skipped.count={skipped_counter})")
            else:
                print(f"run_benches: incremental gate ok "
                      f"({row['speedup']:.2f}x >= "
                      f"{args.min_incremental_speedup:.2f}x at 1% churn, "
                      f"{skipped_counter} cellviews skipped)")

    if args.check_wal_overhead:
        if wal_meta is None:
            failures.append("wal gate: no JFM_WAL_META output found")
        elif wal_meta["overhead_group"] > args.max_wal_overhead:
            group_row = next((r for r in wal_rows if r["mode"] == "wal_group"), None)
            detail = (f" (wal_group {group_row['ns_per_commit']} ns/commit)"
                      if group_row else "")
            failures.append(
                f"wal gate: group-commit overhead "
                f"{wal_meta['overhead_group']:.1%} vs durability-off baseline "
                f"exceeds {args.max_wal_overhead:.0%}"
                f" (group={wal_meta['group']}){detail}")
        else:
            print(f"run_benches: wal gate ok "
                  f"(group-commit overhead {wal_meta['overhead_group']:.1%} <= "
                  f"{args.max_wal_overhead:.0%}, "
                  f"plain wal {wal_meta['overhead_wal']:.1%}, "
                  f"group={wal_meta['group']})")

    if args.check_fault_overhead:
        workers = fault_meta["workers"] if fault_meta else 4
        disabled = [r for r in fault_rows if r["mode"] == "disabled_warm"]
        baseline = [r for r in checkout_rows
                    if r["workers"] == workers and r["mode"] == "warm"]
        if not disabled:
            failures.append("fault gate: no disabled_warm JFM_FAULT_RECOVERY row")
        elif not baseline:
            failures.append(
                f"fault gate: no workers={workers} warm JFM_PARALLEL_CHECKOUT baseline")
        else:
            limit = baseline[0]["wall_us"] * (1.0 + args.max_fault_overhead) \
                + args.fault_overhead_slack_us
            got = disabled[0]["wall_us"]
            if got > limit:
                failures.append(
                    f"fault gate: disarmed warm path {got} us exceeds "
                    f"{limit:.0f} us (baseline {baseline[0]['wall_us']} us "
                    f"+ {args.max_fault_overhead:.0%} + "
                    f"{args.fault_overhead_slack_us} us slack)")
            else:
                print(f"run_benches: fault-overhead gate ok ({got} us vs "
                      f"baseline {baseline[0]['wall_us']} us, "
                      f"limit {limit:.0f} us)")

    for failure in failures:
        print(f"run_benches: FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
