// Hierarchy study (paper s3.3): manual desktop submission vs the
// future-work procedural interface, and the non-isomorphic hierarchy
// limitation -- the single hardest point of the JCF-FMCAD coupling.
//
//   build/examples/hierarchy_study

#include <cstdio>

#include "jfm/coupling/hybrid.hpp"
#include "jfm/workload/generators.hpp"

using namespace jfm;

namespace {

void banner(const char* text) { std::printf("\n== %s ==\n", text); }

// Build leaves, then try a parent whose schematic uses both leaves but
// whose layout places only one of them.
void diverged_scenario(coupling::HybridFramework& hybrid, jcf::UserRef user) {
  for (const char* leaf : {"rom", "ram"}) {
    (void)hybrid.create_cell("p", leaf, user);
    (void)hybrid.reserve_cell("p", leaf, user);
    (void)hybrid.run_activity("p", leaf, "enter_schematic", user,
                              {{"add-port", {"a", "in"}},
                               {"add-port", {"y", "out"}},
                               {"add-prim", {"g", "BUF"}},
                               {"connect", {"a", "g", "a"}},
                               {"connect", {"y", "g", "y"}}});
    (void)hybrid.run_activity("p", leaf, "simulate", user,
                              {{"set-dut", {leaf, "schematic"}}, {"run", {}}});
    (void)hybrid.run_activity("p", leaf, "enter_layout", user,
                              {{"add-layer", {"m1"}},
                               {"draw-rect", {"m1", "0", "0", "10", "10"}}});
    (void)hybrid.publish_cell("p", leaf, user);
  }
  (void)hybrid.create_cell("p", "soc", user);
  (void)hybrid.reserve_cell("p", "soc", user);
  auto sch = hybrid.run_activity("p", "soc", "enter_schematic", user,
                                 {{"add-port", {"a", "in"}},
                                  {"add-port", {"y", "out"}},
                                  {"add-net", {"m"}},
                                  {"add-instance", {"u0", "rom", "schematic"}},
                                  {"add-instance", {"u1", "ram", "schematic"}},
                                  {"connect", {"a", "u0", "a"}},
                                  {"connect", {"m", "u0", "y"}},
                                  {"connect", {"m", "u1", "a"}},
                                  {"connect", {"y", "u1", "y"}}});
  std::printf("   soc schematic (rom + ram): %s\n",
              sch.ok() ? "ok" : sch.error().to_text().c_str());
  (void)hybrid.run_activity("p", "soc", "simulate", user,
                            {{"set-dut", {"soc", "schematic"}}, {"run", {}}});
  // the layout 'flattens away' the ram -- a non-isomorphic hierarchy
  auto lay = hybrid.run_activity("p", "soc", "enter_layout", user,
                                 {{"add-layer", {"m1"}},
                                  {"add-instance", {"i0", "rom", "layout", "0", "0"}}});
  std::printf("   soc layout placing only rom:  %s\n",
              lay.ok() ? "ACCEPTED" : lay.error().to_text().c_str());
}

}  // namespace

int main() {
  banner("1. manual hierarchy submission (the paper's prototype)");
  {
    coupling::HybridFramework hybrid;  // manual mode is the default
    (void)hybrid.bootstrap();
    auto erik = *hybrid.add_designer("erik");
    (void)hybrid.create_project("p");
    workload::HierarchySpec spec{.depth = 2, .fanout = 2, .leaf_gates = 3};
    auto top = workload::build_hierarchical_design(hybrid, "p", spec, erik);
    if (!top.ok()) {
      std::printf("build failed: %s\n", top.error().to_text().c_str());
      return 1;
    }
    const auto& stats = hybrid.hierarchy().stats();
    std::printf("   7-cell tree built; %llu relations walked to the JCF desktop by hand\n",
                static_cast<unsigned long long>(stats.desktop_steps));
    std::printf("   (\"all hierarchical manipulations must be done manually via the JCF\n");
    std::printf("    desktop before the design is started\")\n");
  }

  banner("2. the future-work procedural interface (ablation)");
  {
    coupling::HybridConfig config;
    config.procedural_hierarchy_interface = true;
    coupling::HybridFramework hybrid(config);
    (void)hybrid.bootstrap();
    auto erik = *hybrid.add_designer("erik");
    (void)hybrid.create_project("p");
    workload::HierarchySpec spec{.depth = 2, .fanout = 2, .leaf_gates = 3};
    (void)workload::build_hierarchical_design(hybrid, "p", spec, erik);
    const auto& stats = hybrid.hierarchy().stats();
    std::printf("   same tree; %llu desktop steps, %llu procedural submissions by the tools\n",
                static_cast<unsigned long long>(stats.desktop_steps),
                static_cast<unsigned long long>(stats.procedural_calls));
  }

  banner("3. non-isomorphic hierarchies under JCF 3.0 (rejected)");
  {
    coupling::HybridConfig config;
    config.procedural_hierarchy_interface = true;  // isolate the isomorphism rule
    coupling::HybridFramework hybrid(config);
    (void)hybrid.bootstrap();
    auto erik = *hybrid.add_designer("erik");
    (void)hybrid.create_project("p");
    diverged_scenario(hybrid, erik);
    for (const auto& window : hybrid.consistency_log()) {
      std::printf("   [window] %s\n", window.c_str());
    }
  }

  banner("4. the same scenario with the future-JCF extension (accepted)");
  {
    coupling::HybridConfig config;
    config.procedural_hierarchy_interface = true;
    config.allow_non_isomorphic = true;
    coupling::HybridFramework hybrid(config);
    (void)hybrid.bootstrap();
    auto erik = *hybrid.add_designer("erik");
    (void)hybrid.create_project("p");
    diverged_scenario(hybrid, erik);
    std::printf("   (future JCF releases support non-isomorphic hierarchies, s3.3)\n");
  }
  return 0;
}
