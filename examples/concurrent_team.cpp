// Concurrent engineering (paper s3.1): a three-designer team working in
// the same project, first through plain FMCAD (single .meta, one
// checkout per cellview), then through the hybrid framework (JCF
// workspaces, parallel cell versions).
//
//   build/examples/concurrent_team

#include <cstdio>

#include "jfm/coupling/hybrid.hpp"
#include "jfm/fmcad/session.hpp"
#include "jfm/support/telemetry.hpp"
#include "jfm/workload/contention.hpp"

using namespace jfm;

namespace {
void show(const char* who, const support::Status& st, const char* action) {
  std::printf("   %-6s %-38s -> %s\n", who, action,
              st.ok() ? "ok" : st.error().to_text().c_str());
}
}  // namespace

int main() {
  std::printf("== Act 1: plain FMCAD, one library, one .meta ==\n");
  {
    support::SimClock clock;
    vfs::FileSystem fs(&clock);
    (void)fs.mkdirs(vfs::Path().child("libs"));
    auto library = *fmcad::Library::create(&fs, &clock, vfs::Path().child("libs"), "shared");
    fmcad::DesignerSession admin(library, "admin");
    (void)admin.define_view("schematic", "schematic");
    (void)admin.create_cell("alu");
    (void)admin.create_cellview({"alu", "schematic"});

    fmcad::DesignerSession anna(library, "anna");
    fmcad::DesignerSession ben(library, "ben");
    fmcad::DesignerSession cleo(library, "cleo");

    auto co = anna.checkout({"alu", "schematic"});
    std::printf("   anna   checkout alu/schematic            -> %s\n",
                co.ok() ? "ok (holds the only lock)" : co.error().to_text().c_str());
    auto co2 = ben.checkout({"alu", "schematic"});
    std::printf("   ben    checkout alu/schematic            -> %s\n",
                co2.ok() ? "ok" : co2.error().to_text().c_str());
    std::printf("          (parallel work on two versions of one cellview: impossible)\n");
    // cleo creates a cell; ben's snapshot silently goes stale
    show("cleo", cleo.create_cell("rom"), "create cell rom");
    auto stale = ben.create_cell("mult");
    std::printf("   ben    create cell mult                  -> %s\n",
                stale.ok() ? "ok" : stale.error().to_text().c_str());
    std::printf("          (ben must refresh his .meta view by hand -- the paper's\n");
    std::printf("           'severe locking problems' during coordination)\n");
    ben.refresh();
    show("ben", ben.create_cell("mult"), "create cell mult (after refresh)");
  }

  std::printf("\n== Act 2: the hybrid framework, JCF workspaces ==\n");
  {
    coupling::HybridFramework hybrid;
    (void)hybrid.bootstrap();
    auto anna = *hybrid.add_designer("anna");
    auto ben = *hybrid.add_designer("ben");
    auto cleo = *hybrid.add_designer("cleo");
    (void)hybrid.create_project("shared");
    (void)hybrid.create_cell("shared", "alu", anna);
    (void)hybrid.create_cell("shared", "rom", anna);

    show("anna", hybrid.reserve_cell("shared", "alu", anna), "reserve alu");
    show("ben", hybrid.reserve_cell("shared", "alu", ben), "reserve alu (anna holds it)");
    show("ben", hybrid.reserve_cell("shared", "rom", ben), "reserve rom instead");
    std::printf("          (cells are isolated per workspace; no .meta races, no manual\n");
    std::printf("           refreshes -- metadata is under framework control)\n");

    // parallel work on the SAME cell: cleo derives her own cell version
    auto& jcf = hybrid.jcf();
    auto project = *jcf.find_project("shared");
    auto alu = *jcf.find_cell(project, "alu");
    auto cv2 = jcf.create_cell_version(alu, cleo);
    if (cv2.ok()) {
      auto st = jcf.reserve(*cv2, cleo);
      std::printf("   cleo   new cell version of alu + reserve -> %s\n",
                  st.ok() ? "ok (anna keeps v1, cleo edits v2 in parallel)"
                          : st.error().to_text().c_str());
    }

    // anna does real work in her workspace
    std::vector<coupling::ToolCommand> edits = {
        {"add-port", {"a", "in"}}, {"add-port", {"y", "out"}},
        {"add-prim", {"g", "BUF"}}, {"connect", {"a", "g", "a"}},
        {"connect", {"y", "g", "y"}},
    };
    auto run = hybrid.run_activity("shared", "alu", "enter_schematic", anna, edits);
    std::printf("   anna   enter_schematic on alu            -> %s\n",
                run.ok() ? "ok" : run.error().to_text().c_str());
    show("anna", hybrid.publish_cell("shared", "alu", anna), "publish alu");
    // ben can read anna's published data now
    auto data = hybrid.open_read_only("shared", "alu", "schematic", ben);
    std::printf("   ben    read published alu schematic      -> %s (%zu bytes)\n",
                data.ok() ? "ok" : data.error().to_text().c_str(),
                data.ok() ? data->size() : 0);
  }

  std::printf("\n== Act 3: the numbers (8 cells, 240 ops) ==\n");
  for (int designers : {2, 6, 10}) {
    workload::ContentionParams params;
    params.designers = designers;
    params.cells = 8;
    params.operations = 240;
    auto fmcad = workload::run_fmcad_contention(params);
    auto hybrid = workload::run_hybrid_contention(params);
    if (fmcad.ok() && hybrid.ok()) {
      std::printf("   %2d designers: FMCAD conflict rate %.0f%%, hybrid %.0f%%\n", designers,
                  100.0 * fmcad->conflict_rate(), 100.0 * hybrid->conflict_rate());
    }
  }

  // The registry accumulated across all three acts: workspace traffic,
  // FMCAD lock conflicts and transfer bytes in one uniform table.
  std::printf("\n== telemetry registry (whole run) ==\n");
  auto snapshot = support::telemetry::Registry::global().snapshot();
  std::printf("%s", snapshot.to_table("jcf.workspace.").c_str());
  std::printf("%s", snapshot.to_table("fmcad.library.").c_str());
  std::printf("%s", snapshot.to_table("coupling.transfer.").c_str());
  return 0;
}
