// Quickstart: bring up the hybrid JCF-FMCAD framework, enter a half
// adder through the encapsulated schematic tool, simulate it out of the
// JCF database, draw a little layout, and inspect what the framework
// recorded along the way.
//
//   build/examples/quickstart

#include <cstdio>

#include "jfm/coupling/hybrid.hpp"
#include "jfm/support/telemetry.hpp"

using namespace jfm;

namespace {
void say(const char* text) { std::printf("%s\n", text); }
void fail(const support::Error& error) {
  std::printf("FAILED: %s\n", error.to_text().c_str());
  std::exit(1);
}
}  // namespace

int main() {
  say("== 1. administrator: bootstrap the hybrid framework ==");
  coupling::HybridFramework hybrid;
  if (auto st = hybrid.bootstrap(); !st.ok()) fail(st.error());
  auto alice = hybrid.add_designer("alice");
  if (!alice.ok()) fail(alice.error());
  if (auto p = hybrid.create_project("demo"); !p.ok()) fail(p.error());
  say("   viewtypes schematic/layout/simulate, three encapsulated tools,");
  say("   frozen flow: enter_schematic -> simulate -> enter_layout");

  say("\n== 2. designer alice: create and reserve the cell ==");
  if (auto st = hybrid.create_cell("demo", "halfadder", *alice); !st.ok()) fail(st.error());
  if (auto st = hybrid.reserve_cell("demo", "halfadder", *alice); !st.ok()) fail(st.error());
  say("   cell 'halfadder' exists in JCF (master) and the FMCAD library (slave)");

  say("\n== 3. schematic entry (first activity of the prescribed flow) ==");
  std::vector<coupling::ToolCommand> schematic = {
      {"add-port", {"a", "in"}},     {"add-port", {"b", "in"}},
      {"add-port", {"sum", "out"}},  {"add-port", {"carry", "out"}},
      {"add-prim", {"x1", "XOR"}},   {"add-prim", {"a1", "AND"}},
      {"connect", {"a", "x1", "a"}}, {"connect", {"b", "x1", "b"}},
      {"connect", {"sum", "x1", "y"}},
      {"connect", {"a", "a1", "a"}}, {"connect", {"b", "a1", "b"}},
      {"connect", {"carry", "a1", "y"}},
  };
  auto sch = hybrid.run_activity("demo", "halfadder", "enter_schematic", *alice, schematic);
  if (!sch.ok()) fail(sch.error());
  std::printf("   checked in as FMCAD version %d; copied back into OMS (%llu bytes)\n",
              sch->fmcad_version, static_cast<unsigned long long>(sch->bytes_imported));

  say("\n== 4. simulate (data resolved from the JCF database) ==");
  std::vector<coupling::ToolCommand> tb = {
      {"set-dut", {"halfadder", "schematic"}},
      {"add-stim", {"1", "a", "1"}},
      {"add-stim", {"1", "b", "1"}},
      {"add-watch", {"sum"}},
      {"add-watch", {"carry"}},
      {"set-runtime", {"50"}},
      {"run", {}},
  };
  auto sim = hybrid.run_activity("demo", "halfadder", "simulate", *alice, tb);
  if (!sim.ok()) fail(sim.error());
  auto results = hybrid.open_read_only("demo", "halfadder", "simulate", *alice);
  if (!results.ok()) fail(results.error());
  auto file = fmcad::DesignFile::parse(*results);
  auto bench = tools::Testbench::parse(file->payload);
  for (const auto& [signal, value] : bench->results) {
    std::printf("   a=1 b=1  ->  %s = %c\n", signal.c_str(), tools::to_char(value));
  }

  say("\n== 5. layout entry (final activity) ==");
  std::vector<coupling::ToolCommand> layout = {
      {"add-layer", {"metal1"}},
      {"draw-rect", {"metal1", "0", "0", "120", "20", "a"}},
      {"draw-rect", {"metal1", "0", "40", "120", "60", "b"}},
      {"draw-rect", {"metal1", "0", "80", "120", "100", "sum"}},
  };
  auto lay = hybrid.run_activity("demo", "halfadder", "enter_layout", *alice, layout);
  if (!lay.ok()) fail(lay.error());
  say("   layout stored; derivation recorded automatically");

  say("\n== 6. what the framework knows now ==");
  auto rows = hybrid.derivation_report("demo", "halfadder");
  if (rows.ok()) {
    for (const auto& row : *rows) std::printf("   derivation: %s\n", row.c_str());
  }
  if (auto st = hybrid.publish_cell("demo", "halfadder", *alice); !st.ok()) fail(st.error());
  auto problems = hybrid.check_consistency("demo");
  std::printf("   consistency sweep: %zu problem(s)\n", problems.ok() ? problems->size() : 99);
  say("   transfer traffic (from the telemetry registry):");
  auto snapshot = support::telemetry::Registry::global().snapshot();
  std::printf("%s", snapshot.to_table("coupling.transfer.").c_str());
  say("\ndone.");
  return 0;
}
