// Framework administration (paper s2.1): the resources a JCF
// administrator defines in advance -- users, teams, tools, viewtypes,
// activities with Needs/Creates, frozen flows -- plus database
// checkpoint/restore and the future-work inter-project data sharing.
//
//   build/examples/framework_admin

#include <cstdio>

#include "jfm/coupling/hybrid.hpp"
#include "jfm/oms/dump.hpp"

using namespace jfm;

int main() {
  std::printf("== 1. resources are metadata under framework control ==\n");
  support::SimClock clock;
  jcf::JcfFramework jcf(&clock);

  auto alice = *jcf.create_user("alice");
  auto bob = *jcf.create_user("bob");
  auto frontend = *jcf.create_team("frontend");
  auto backend = *jcf.create_team("backend");
  (void)jcf.add_member(frontend, alice);
  (void)jcf.add_member(backend, bob);
  auto sch_tool = *jcf.register_tool("schematic_entry");
  auto sim_tool = *jcf.register_tool("digital_simulator");
  auto vt_sch = *jcf.create_viewtype("schematic");
  auto vt_sim = *jcf.create_viewtype("simulate");
  auto enter = *jcf.create_activity("enter", sch_tool, {}, {vt_sch});
  auto verify = *jcf.create_activity("verify", sim_tool, {vt_sch}, {vt_sim});
  std::printf("   2 users, 2 teams, 2 tools, 2 viewtypes, 2 activities defined\n");

  auto flow = *jcf.create_flow("frontend_flow", {enter, verify});
  (void)jcf.add_precedence(flow, enter, verify);
  std::printf("   flow 'frontend_flow': enter precedes verify\n");
  auto premature = jcf.create_project("x", frontend);
  (void)premature;
  auto cell_attempt =
      jcf.create_cell(*jcf.create_project("chip", frontend), "alu", flow, frontend);
  std::printf("   attaching the unfrozen flow to a cell: %s\n",
              cell_attempt.ok() ? "accepted (?)" : cell_attempt.error().to_text().c_str());
  (void)jcf.freeze_flow(flow);
  auto chip = *jcf.find_project("chip");
  auto alu = *jcf.create_cell(chip, "alu", flow, frontend);
  std::printf("   after freeze_flow: cell 'alu' created, flow is now immutable\n");
  auto mutate = jcf.add_precedence(flow, verify, enter);
  std::printf("   modifying the frozen flow: %s\n",
              mutate.ok() ? "accepted (?)" : mutate.error().to_text().c_str());

  std::printf("\n== 2. team rules gate everything ==\n");
  auto denied = jcf.create_cell_version(alu, bob);  // bob is backend
  std::printf("   bob (backend) versions a frontend cell: %s\n",
              denied.ok() ? "accepted (?)" : denied.error().to_text().c_str());
  auto cv = *jcf.create_cell_version(alu, alice);
  (void)jcf.reserve(cv, alice);
  auto variant = *jcf.create_variant(cv, "work", alice);
  auto dobj = *jcf.create_design_object(variant, "schematic", vt_sch, alice);
  (void)*jcf.create_dov(dobj, "port a in\nnet a\n", alice);
  (void)jcf.publish(cv, alice);
  std::printf("   alice: version 1 of alu created, populated and published\n");

  std::printf("\n== 3. checkpoint / restore (everything lives in OMS) ==\n");
  vfs::FileSystem fs(&clock);
  (void)fs.mkdirs(vfs::Path().child("backup"));
  auto file = vfs::Path().child("backup").child("jcf.oms");
  (void)jcf.checkpoint(fs, file);
  std::printf("   checkpoint written: %llu bytes (%zu objects)\n",
              static_cast<unsigned long long>(fs.stat(file)->size),
              jcf.store().object_count());
  jcf::JcfFramework restored(&clock);
  (void)restored.restore(fs, file);
  auto found = restored.find_cell(*restored.find_project("chip"), "alu");
  std::printf("   restored framework: cell alu %s, %zu objects\n",
              found.ok() ? "found" : "MISSING", restored.store().object_count());

  std::printf("\n== 4. data sharing between projects (s3.1 future work) ==\n");
  {
    coupling::HybridFramework prototype;  // the paper's configuration
    (void)prototype.bootstrap();
    auto erin = *prototype.add_designer("erin");
    (void)prototype.create_project("ip");
    (void)prototype.create_project("soc");
    (void)prototype.create_cell("ip", "uart", erin);
    auto refused = prototype.share_cell("soc", "ip", "uart");
    std::printf("   paper prototype:  %s\n",
                refused.ok() ? "shared (?)" : refused.error().to_text().c_str());
  }
  {
    coupling::HybridConfig config;
    config.allow_project_data_sharing = true;
    coupling::HybridFramework future(config);
    (void)future.bootstrap();
    auto erin = *future.add_designer("erin");
    (void)future.create_project("ip");
    (void)future.create_project("soc");
    (void)future.create_cell("ip", "uart", erin);
    auto granted = future.share_cell("soc", "ip", "uart");
    std::printf("   future extension: %s\n",
                granted.ok() ? "uart shared into project soc (read access to published data)"
                             : granted.error().to_text().c_str());
  }
  return 0;
}
