// A whole design session driven from the JCF desktop command surface
// (paper s3.4), followed by waveform extraction: the design is pulled
// back out of the JCF database, re-simulated and dumped as an
// industry-standard VCD.
//
//   build/examples/desktop_session

#include <cstdio>

#include "jfm/coupling/desktop.hpp"
#include "jfm/coupling/resolvers.hpp"
#include "jfm/tools/vcd.hpp"

using namespace jfm;

int main() {
  coupling::HybridFramework hybrid;
  if (!hybrid.bootstrap().ok()) return 1;
  coupling::DesktopShell shell(&hybrid);

  const char* script = R"(
    echo -- session start --
    trace on
    designer fred
    project demo
    cell demo toggler fred
    reserve demo toggler fred

    # schematic: a DFF whose data input is its inverted output
    edit add-port clk in
    edit add-port q out
    edit add-net d
    edit add-prim ff DFF
    edit add-prim inv NOT
    edit connect clk ff clk
    edit connect d ff d
    edit connect q ff q
    edit connect q inv a
    edit connect d inv y
    run demo toggler enter_schematic fred

    # simulate a few clock edges
    edit set-dut toggler schematic
    edit add-stim 1 clk 0
    edit add-stim 2 q 0
    edit add-stim 10 clk 1
    edit add-stim 20 clk 0
    edit add-stim 30 clk 1
    edit add-stim 40 clk 0
    edit add-stim 50 clk 1
    edit add-watch q
    edit set-runtime 100
    run demo toggler simulate fred

    publish demo toggler fred
    checkout demo toggler fred
    derivations demo toggler
    check demo

    # what the framework measured along the way (s3.6 made visible)
    stats coupling.transfer.
    trace dump
    trace off
    echo -- session end --
  )";

  auto result = shell.run_script(script);
  if (!result.ok()) {
    std::printf("desktop session failed: %s\n", result.error().to_text().c_str());
    return 1;
  }
  std::printf("== desktop transcript (%zu desktop steps) ==\n", result->commands_executed);
  for (const auto& line : result->transcript) std::printf("   %s\n", line.c_str());

  // ---- pull the design out of OMS and produce a waveform dump -------------
  std::printf("\n== waveform extraction (VCD) ==\n");
  auto& jcf = hybrid.jcf();
  auto fred = *jcf.find_user("fred");
  auto project = *jcf.find_project("demo");
  auto resolver = coupling::make_jcf_resolver(&jcf, project, fred);
  auto top = resolver({"toggler", "schematic"});
  if (!top.ok()) return 1;
  auto circuit = tools::elaborate(*top, "toggler", resolver);
  if (!circuit.ok()) {
    std::printf("elaboration failed: %s\n", circuit.error().to_text().c_str());
    return 1;
  }
  tools::Simulator sim(std::move(*circuit));
  (void)sim.inject(1, "clk", tools::Logic::L0);
  (void)sim.inject(2, "q", tools::Logic::L0);  // seed the flop
  for (tools::SimTime t = 10; t <= 90; t += 10) {
    (void)sim.inject(t, "clk", (t / 10) % 2 == 1 ? tools::Logic::L1 : tools::Logic::L0);
  }
  (void)sim.run(100);
  std::string vcd = tools::to_vcd(sim, {"clk", "q", "d"});
  std::printf("%s", vcd.c_str());
  std::printf("\n(the q output toggles on every rising clock edge -- load this into any\n");
  std::printf(" VCD viewer; %llu events were processed)\n",
              static_cast<unsigned long long>(sim.stats().events_processed));
  return 0;
}
