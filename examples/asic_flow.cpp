// A fully managed ASIC flow (paper s3.2/s3.5): a four-bit ripple-carry
// adder built from full adders under flow control, with forced
// execution (consistency windows), derivation queries and the
// project-wide consistency sweep.
//
//   build/examples/asic_flow

#include <cstdio>

#include "jfm/coupling/hybrid.hpp"

using namespace jfm;

namespace {

void fail(const support::Error& error) {
  std::printf("FAILED: %s\n", error.to_text().c_str());
  std::exit(1);
}

// full adder: sum = a^b^cin, cout = ab | cin(a^b)
std::vector<coupling::ToolCommand> full_adder() {
  return {
      {"add-port", {"a", "in"}},      {"add-port", {"b", "in"}},
      {"add-port", {"cin", "in"}},    {"add-port", {"sum", "out"}},
      {"add-port", {"cout", "out"}},  {"add-net", {"axb"}},
      {"add-net", {"ab"}},            {"add-net", {"cx"}},
      {"add-prim", {"x1", "XOR"}},    {"add-prim", {"x2", "XOR"}},
      {"add-prim", {"a1", "AND"}},    {"add-prim", {"a2", "AND"}},
      {"add-prim", {"o1", "OR"}},
      {"connect", {"a", "x1", "a"}},  {"connect", {"b", "x1", "b"}},
      {"connect", {"axb", "x1", "y"}},
      {"connect", {"axb", "x2", "a"}}, {"connect", {"cin", "x2", "b"}},
      {"connect", {"sum", "x2", "y"}},
      {"connect", {"a", "a1", "a"}},  {"connect", {"b", "a1", "b"}},
      {"connect", {"ab", "a1", "y"}},
      {"connect", {"axb", "a2", "a"}}, {"connect", {"cin", "a2", "b"}},
      {"connect", {"cx", "a2", "y"}},
      {"connect", {"ab", "o1", "a"}}, {"connect", {"cx", "o1", "b"}},
      {"connect", {"cout", "o1", "y"}},
  };
}

// 4-bit ripple: chains four full adders.
std::vector<coupling::ToolCommand> ripple4() {
  std::vector<coupling::ToolCommand> edits = {
      {"add-port", {"a", "in"}}, {"add-port", {"b", "in"}}, {"add-port", {"cin", "in"}},
      {"add-port", {"sum", "out"}}, {"add-port", {"cout", "out"}},
  };
  // bit nets (single-bit demo wiring: all stages share a/b inputs)
  for (int i = 0; i < 3; ++i) {
    edits.push_back({"add-net", {"c" + std::to_string(i)}});
  }
  for (int i = 0; i < 4; ++i) {
    edits.push_back({"add-net", {"s" + std::to_string(i)}});
  }
  for (int i = 0; i < 4; ++i) {
    const std::string u = "fa" + std::to_string(i);
    edits.push_back({"add-instance", {u, "fulladder", "schematic"}});
    edits.push_back({"connect", {"a", u, "a"}});
    edits.push_back({"connect", {"b", u, "b"}});
    edits.push_back({"connect", {i == 0 ? "cin" : "c" + std::to_string(i - 1), u, "cin"}});
    edits.push_back({"connect", {i == 3 ? "cout" : "c" + std::to_string(i), u, "cout"}});
    edits.push_back({"connect", {i == 3 ? "sum" : "s" + std::to_string(i), u, "sum"}});
  }
  return edits;
}

}  // namespace

int main() {
  coupling::HybridFramework hybrid;
  if (auto st = hybrid.bootstrap(); !st.ok()) fail(st.error());
  auto dana = *hybrid.add_designer("dana");
  (void)hybrid.create_project("asic");

  std::printf("== flow: enter_schematic -> simulate -> enter_layout (frozen) ==\n\n");

  // ---- fulladder: leaf cell through the full flow --------------------------
  std::printf("-- cell fulladder --\n");
  (void)hybrid.create_cell("asic", "fulladder", dana);
  (void)hybrid.reserve_cell("asic", "fulladder", dana);
  auto sch = hybrid.run_activity("asic", "fulladder", "enter_schematic", dana, full_adder());
  if (!sch.ok()) fail(sch.error());
  std::printf("   enter_schematic: ok (v%d)\n", sch->fmcad_version);
  auto sim = hybrid.run_activity("asic", "fulladder", "simulate", dana,
                                 {{"set-dut", {"fulladder", "schematic"}},
                                  {"add-stim", {"1", "a", "1"}},
                                  {"add-stim", {"1", "b", "1"}},
                                  {"add-stim", {"1", "cin", "1"}},
                                  {"add-watch", {"sum"}},
                                  {"add-watch", {"cout"}},
                                  {"set-runtime", {"60"}},
                                  {"run", {}}});
  if (!sim.ok()) fail(sim.error());
  auto tb_text = hybrid.open_read_only("asic", "fulladder", "simulate", dana);
  auto tb = tools::Testbench::parse(fmcad::DesignFile::parse(*tb_text)->payload);
  std::printf("   simulate: 1+1+1 -> sum=%c cout=%c (expect 1 1)\n",
              tools::to_char(tb->results[0].second), tools::to_char(tb->results[1].second));
  auto lay = hybrid.run_activity(
      "asic", "fulladder", "enter_layout", dana,
      {{"add-layer", {"metal1"}}, {"draw-rect", {"metal1", "0", "0", "200", "120", "a"}}});
  if (!lay.ok()) fail(lay.error());
  std::printf("   enter_layout: ok\n");
  (void)hybrid.publish_cell("asic", "fulladder", dana);

  // ---- ripple4: hierarchy must be declared via the desktop first -----------
  std::printf("\n-- cell ripple4 (hierarchical) --\n");
  (void)hybrid.create_cell("asic", "ripple4", dana);
  (void)hybrid.reserve_cell("asic", "ripple4", dana);
  auto premature = hybrid.run_activity("asic", "ripple4", "enter_schematic", dana, ripple4());
  std::printf("   without desktop declaration: %s\n",
              premature.ok() ? "accepted (?)" : premature.error().to_text().c_str());
  (void)hybrid.declare_child("asic", "ripple4", "fulladder");
  std::printf("   declared ripple4 contains fulladder via the JCF desktop (%llu step)\n",
              static_cast<unsigned long long>(hybrid.hierarchy().stats().desktop_steps));
  auto top = hybrid.run_activity("asic", "ripple4", "enter_schematic", dana, ripple4());
  if (!top.ok()) fail(top.error());
  std::printf("   enter_schematic: ok (4 fulladder instances)\n");

  // forced layout: simulate has not run for ripple4
  auto forced = hybrid.run_activity(
      "asic", "ripple4", "enter_layout", dana,
      {{"add-layer", {"metal1"}},
       {"add-instance", {"i0", "fulladder", "layout", "0", "0"}},
       {"add-instance", {"i1", "fulladder", "layout", "220", "0"}},
       {"add-instance", {"i2", "fulladder", "layout", "440", "0"}},
       {"add-instance", {"i3", "fulladder", "layout", "660", "0"}}},
      /*force=*/true);
  if (!forced.ok()) fail(forced.error());
  std::printf("   enter_layout (forced past simulate): ok, %zu consistency window(s):\n",
              forced->consistency_windows.size());
  for (const auto& w : forced->consistency_windows) std::printf("     [window] %s\n", w.c_str());

  // run the skipped simulation afterwards
  auto late_sim = hybrid.run_activity("asic", "ripple4", "simulate", dana,
                                      {{"set-dut", {"ripple4", "schematic"}},
                                       {"add-stim", {"1", "a", "1"}},
                                       {"add-stim", {"1", "b", "0"}},
                                       {"add-stim", {"1", "cin", "1"}},
                                       {"add-watch", {"sum"}},
                                       {"add-watch", {"cout"}},
                                       {"set-runtime", {"200"}},
                                       {"run", {}}});
  if (!late_sim.ok()) fail(late_sim.error());
  std::printf("   simulate (flattened through 4 instances): ok\n");
  (void)hybrid.publish_cell("asic", "ripple4", dana);

  // ---- what the framework recorded ---------------------------------------
  std::printf("\n== derivation relations (what-belongs-to-what, s3.5) ==\n");
  for (const char* cell : {"fulladder", "ripple4"}) {
    auto rows = hybrid.derivation_report("asic", cell);
    if (!rows.ok()) continue;
    for (const auto& row : *rows) std::printf("   %-10s %s\n", cell, row.c_str());
  }

  std::printf("\n== project consistency sweep (s3.2) ==\n");
  auto problems = hybrid.check_consistency("asic");
  if (problems.ok() && problems->empty()) {
    std::printf("   no problems found\n");
  } else if (problems.ok()) {
    for (const auto& p : *problems) std::printf("   PROBLEM: %s\n", p.c_str());
  }

  std::printf("\n== analysis straight off the master database ==\n");
  auto lvs = hybrid.run_lvs("asic", "ripple4", dana);
  if (lvs.ok()) {
    std::printf("   LVS ripple4: %zu violation(s)%s\n", lvs->violation_count(),
                lvs->clean() ? " -- clean" : "");
    for (const auto& row : lvs->describe()) std::printf("     %s\n", row.c_str());
  }
  std::string path_text;
  auto timing = hybrid.report_timing("asic", "ripple4", dana, &path_text);
  if (timing.ok()) {
    std::printf("   STA ripple4: critical delay %llu\n",
                static_cast<unsigned long long>(timing->critical_delay));
    std::printf("     %s\n", path_text.c_str());
  }
  return 0;
}
